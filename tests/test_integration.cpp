#include <gtest/gtest.h>

#include <fstream>

#include "experiments/campaign.hpp"
#include "experiments/characterization.hpp"
#include "experiments/reporting.hpp"
#include "experiments/sh_training.hpp"

namespace rt::experiments {
namespace {

/// Golden runs of every scenario must be accident-free.
class GoldenRunTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenRunTest, NoAccident) {
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    LoopConfig loop;
    stats::Rng rng(seed);
    sim::Scenario sc = sim::make_scenario(GetParam(), rng);
    ClosedLoop cl(sc, loop, seed * 97);
    const RunResult r = cl.run();
    EXPECT_FALSE(r.crash) << GetParam() << " seed " << seed;
    EXPECT_FALSE(r.collision);
    EXPECT_GT(r.min_delta, 4.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, GoldenRunTest,
                         ::testing::Values("DS-1", "DS-2", "DS-3", "DS-4",
                                           "DS-5", "cut-in",
                                           "staggered-crossing",
                                           "dense-follow"));

TEST(AttackedRun, ScriptedDisappearOnDs2CausesAccidents) {
  // Even with dumb scripted timing (no NN), hiding the crossing pedestrian
  // near the stopping decision point produces accidents in a large
  // fraction of runs.
  int crashes = 0;
  int triggered = 0;
  for (int i = 0; i < 6; ++i) {
    LoopConfig loop;
    stats::Rng rng(7);
    sim::Scenario sc = sim::make_scenario("DS-2", rng);
    ClosedLoop cl(sc, loop, 1001 + i);
    auto cfg = make_attacker_config(loop, core::AttackVector::kDisappear,
                                    core::TimingPolicy::kAtDeltaThreshold);
    cfg.delta_trigger = 12.0;
    cfg.fixed_k = 31;
    cl.set_attacker(std::make_unique<core::Robotack>(
        cfg, loop.camera, loop.noise, loop.mot, 2002 + i));
    const RunResult r = cl.run();
    triggered += static_cast<int>(r.attack.triggered);
    crashes += static_cast<int>(r.crash);
  }
  // Re-pinned for the PR 8 counter-based noise migration: one of the six
  // seeds no longer dips below the 12 m trigger before the pedestrian
  // clears (old std::normal_distribution pin, from the now-removed
  // legacy path: triggered == 6).
  EXPECT_EQ(triggered, 5);
  EXPECT_GE(crashes, 1);
}

TEST(AttackedRun, ScriptedMoveOutOnDs1ForcesHardOutcome) {
  LoopConfig loop;
  stats::Rng rng(7);
  sim::Scenario sc = sim::make_scenario("DS-1", rng);
  ClosedLoop cl(sc, loop, 1001);
  auto cfg = make_attacker_config(loop, core::AttackVector::kMoveOut,
                                  core::TimingPolicy::kAtDeltaThreshold);
  cfg.delta_trigger = 14.0;
  cfg.fixed_k = 65;
  cl.set_attacker(std::make_unique<core::Robotack>(
      cfg, loop.camera, loop.noise, loop.mot, 2002));
  const RunResult r = cl.run();
  EXPECT_TRUE(r.attack.triggered);
  EXPECT_TRUE(r.eb || r.crash);
  EXPECT_GT(r.attack.k_prime, 0);  // Move_Out has a shift phase
}

TEST(Campaign, Aggregation) {
  CampaignResult result;
  result.runs.resize(4);
  result.runs[0].eb = true;
  result.runs[0].crash = true;
  result.runs[0].attack.triggered = true;
  result.runs[0].attack.planned_k = 10;
  result.runs[0].attack.k_prime = 4;
  result.runs[0].attack.vector = core::AttackVector::kMoveOut;
  result.runs[0].min_delta_since_attack = 2.0;
  result.runs[1].eb = true;
  result.runs[1].attack.triggered = true;
  result.runs[1].attack.planned_k = 20;
  result.runs[1].attack.vector = core::AttackVector::kDisappear;
  result.runs[1].min_delta_since_attack = 9.0;
  EXPECT_EQ(result.eb_count(), 2);
  EXPECT_EQ(result.crash_count(), 1);
  EXPECT_EQ(result.triggered_count(), 2);
  EXPECT_DOUBLE_EQ(result.eb_rate(), 0.5);
  EXPECT_DOUBLE_EQ(result.median_k(), 15.0);
  EXPECT_EQ(result.k_primes().size(), 1u);  // Disappear excluded
  EXPECT_EQ(result.min_deltas().size(), 2u);
}

TEST(Campaign, SpecsCoverTable2) {
  const auto specs = table2_campaigns(10, 1);
  ASSERT_EQ(specs.size(), 7u);
  EXPECT_EQ(specs.back().mode, AttackMode::kRandomBaseline);
  EXPECT_EQ(no_sh_campaigns(10, 1).size(), 6u);
}

TEST(Campaign, GoldenModeRunsWithoutAttacker) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  CampaignSpec spec{"golden", "DS-3",
                    core::AttackVector::kMoveIn, AttackMode::kGolden, 3, 42};
  const auto result = runner.run(spec);
  EXPECT_EQ(result.n(), 3);
  EXPECT_EQ(result.triggered_count(), 0);
  EXPECT_EQ(result.crash_count(), 0);
}

TEST(Campaign, DeterministicAcrossInvocations) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  CampaignSpec spec{"nosh", "DS-2",
                    core::AttackVector::kDisappear, AttackMode::kNoSh, 3, 5};
  const auto a = runner.run(spec);
  const auto b = runner.run(spec);
  ASSERT_EQ(a.n(), b.n());
  for (int i = 0; i < a.n(); ++i) {
    EXPECT_EQ(a.runs[static_cast<std::size_t>(i)].eb,
              b.runs[static_cast<std::size_t>(i)].eb);
    EXPECT_DOUBLE_EQ(a.runs[static_cast<std::size_t>(i)].min_delta,
                     b.runs[static_cast<std::size_t>(i)].min_delta);
  }
}

TEST(ShTraining, DatasetNonEmptyAndLabeled) {
  LoopConfig loop;
  ShTrainingConfig cfg;
  cfg.delta_triggers = {16.0, 24.0};
  cfg.ks = {10, 30};
  cfg.repeats = 1;
  const nn::Dataset ds =
      generate_sh_dataset(core::AttackVector::kDisappear, loop, cfg);
  ASSERT_GT(ds.size(), 4u);
  // Longer attacks produce smaller post-attack safety potential on average.
  double sum_short = 0.0;
  double sum_long = 0.0;
  int n_short = 0;
  int n_long = 0;
  for (std::size_t j = 0; j < ds.size(); ++j) {
    if (ds.x(5, j) < 20.0) {
      sum_short += ds.y(0, j);
      ++n_short;
    } else {
      sum_long += ds.y(0, j);
      ++n_long;
    }
  }
  ASSERT_GT(n_short, 0);
  ASSERT_GT(n_long, 0);
  EXPECT_GT(sum_short / n_short, sum_long / n_long);
}

TEST(Characterization, FitsRecoverGeneratorStatistics) {
  CharacterizationConfig cfg;
  cfg.duration_s = 120.0;  // shortened for test runtime
  const auto result = characterize_detector(
      cfg, perception::CameraModel{},
      perception::DetectorNoiseModel::paper_defaults());
  // Both classes produced samples.
  EXPECT_GT(result.vehicle.deltas_x.size(), 1000u);
  EXPECT_GT(result.pedestrian.deltas_x.size(), 1000u);
  EXPECT_GT(result.vehicle.streaks.size(), 5u);
  // The pedestrian x-error population is much wider than the vehicle's
  // (paper: 2.01 vs 0.464).
  EXPECT_GT(result.pedestrian.fit_x.sigma, result.vehicle.fit_x.sigma);
  // Misdetection rates are moderate.
  EXPECT_GT(result.vehicle.misdetection_rate(), 0.01);
  EXPECT_LT(result.vehicle.misdetection_rate(), 0.45);
}

TEST(Reporting, TableAndFormat) {
  const std::string table =
      format_table({"a", "bb"}, {{"1", "2"}, {"333", "4"}});
  EXPECT_NE(table.find("333"), std::string::npos);
  EXPECT_NE(table.find("| a "), std::string::npos);
  EXPECT_EQ(fmt(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_pct(0.526), "52.6%");
}

TEST(Reporting, CsvEscapeRfc4180) {
  // Clean cells pass through untouched.
  EXPECT_EQ(csv_escape("DS-1-Disappear-R"), "DS-1-Disappear-R");
  EXPECT_EQ(csv_escape(""), "");
  // Commas, quotes and newlines force quoting; inner quotes double.
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line1\nline2"), "\"line1\nline2\"");
  EXPECT_EQ(csv_escape("cr\rcell"), "\"cr\rcell\"");
  EXPECT_EQ(csv_escape("both,\"x\""), "\"both,\"\"x\"\"\"");
}

TEST(Reporting, WriteCsvQuotesDirtyCells) {
  const std::string path =
      ::testing::TempDir() + "/robotack_write_csv_test.csv";
  write_csv(path, {"id", "note"},
            {{"r1", "contains, comma"}, {"r2", "quote \" inside"}});
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "id,note");
  std::getline(is, line);
  EXPECT_EQ(line, "r1,\"contains, comma\"");
  std::getline(is, line);
  EXPECT_EQ(line, "r2,\"quote \"\" inside\"");
}

TEST(Ids, RandomLongDisappearTripsAbsenceTest) {
  // A random-length Disappear on a LiDAR-visible vehicle beyond the streak
  // p99 must be flagged; RoboTack's K_max-bounded one on DS-1 stays under
  // far more often. Here: scripted 80-frame blackout on DS-1.
  LoopConfig loop;
  loop.enable_ids = true;
  stats::Rng rng(7);
  sim::Scenario sc = sim::make_scenario("DS-1", rng);
  ClosedLoop cl(sc, loop, 31);
  auto cfg = make_attacker_config(loop, core::AttackVector::kDisappear,
                                  core::TimingPolicy::kAtDeltaThreshold);
  cfg.delta_trigger = 16.0;
  cfg.fixed_k = 80;  // beyond the vehicle p99 of 59.4
  cl.set_attacker(std::make_unique<core::Robotack>(
      cfg, loop.camera, loop.noise, loop.mot, 77));
  const RunResult r = cl.run();
  EXPECT_TRUE(r.attack.triggered);
  EXPECT_TRUE(r.ids_flagged);
}

}  // namespace
}  // namespace rt::experiments
