// Scenario-registry and campaign-grid tests: unknown-key errors, key
// ordering stability, parameter-override determinism, and golden pins
// asserting the registry-built paper scenarios (and the grid-built Table II
// spec list) are identical to their pre-registry hand-rolled versions.

#include <gtest/gtest.h>

#include <stdexcept>

#include "experiments/campaign.hpp"
#include "experiments/campaign_grid.hpp"
#include "sim/road.hpp"
#include "sim/scenario_registry.hpp"

namespace rt {
namespace {

using experiments::AttackMode;
using experiments::CampaignGridBuilder;
using experiments::CampaignRunner;
using experiments::CampaignSpec;
using experiments::LoopConfig;
using sim::Scenario;
using sim::ScenarioParams;
using sim::ScenarioRegistry;

TEST(ScenarioRegistry, UnknownKeyThrowsListingKnownKeys) {
  const auto& reg = ScenarioRegistry::global();
  EXPECT_FALSE(reg.contains("DS-99"));
  stats::Rng rng(1);
  try {
    (void)reg.make("DS-99", rng);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("DS-99"), std::string::npos);
    EXPECT_NE(what.find("DS-1"), std::string::npos);  // lists known keys
  }
  EXPECT_THROW((void)reg.get(""), std::out_of_range);
  EXPECT_THROW((void)reg.defaults("nope"), std::out_of_range);
  EXPECT_THROW((void)reg.index_of("nope"), std::out_of_range);
}

TEST(ScenarioRegistry, RegistrationValidation) {
  ScenarioRegistry reg;
  EXPECT_THROW(reg.register_scenario({"", "desc", {}, nullptr}),
               std::invalid_argument);
  EXPECT_THROW(reg.register_scenario({"k", "no generator", {}, nullptr}),
               std::invalid_argument);
  const auto gen = [](const ScenarioParams& p, stats::Rng&) {
    Scenario s;
    s.key = "k";
    s.duration = p.duration;
    return s;
  };
  reg.register_scenario({"k", "ok", {}, gen});
  EXPECT_THROW(reg.register_scenario({"k", "duplicate", {}, gen}),
               std::invalid_argument);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ScenarioRegistry, KeysOrderingIsRegistrationStable) {
  const auto& reg = ScenarioRegistry::global();
  const auto keys = reg.keys();
  ASSERT_GE(keys.size(), 8u);
  // The paper's five scenarios keep their enum-era indices 0..4 forever
  // (SH-training RNG streams derive from them), extended families follow.
  const std::vector<std::string> builtins{
      "DS-1", "DS-2", "DS-3", "DS-4", "DS-5",
      "cut-in", "staggered-crossing", "dense-follow"};
  for (std::size_t i = 0; i < builtins.size(); ++i) {
    EXPECT_EQ(keys[i], builtins[i]) << "index " << i;
    EXPECT_EQ(reg.index_of(builtins[i]), i);
  }
  // Repeated calls return the identical ordering.
  EXPECT_EQ(reg.keys(), keys);
  // Appending never reorders existing keys.
  ScenarioRegistry local;
  const auto gen = [](const ScenarioParams&, stats::Rng&) {
    return Scenario{};
  };
  local.register_scenario({"first", "", {}, gen});
  local.register_scenario({"second", "", {}, gen});
  EXPECT_EQ(local.keys(), (std::vector<std::string>{"first", "second"}));
  local.register_scenario({"third", "", {}, gen});
  EXPECT_EQ(local.index_of("first"), 0u);
  EXPECT_EQ(local.index_of("third"), 2u);
}

// ------------------------------------------- golden pins (pre-redesign)

// The registry-built paper scenarios must be bit-identical to the scripted
// worlds of the ScenarioId-enum era. These constants are the hand-rolled
// factory values from before the redesign — do not derive them from
// ScenarioParams defaults, that would make the pin circular.

TEST(ScenarioRegistryGolden, Ds1MatchesPreRedesignFactory) {
  stats::Rng rng(3);
  const Scenario s = ScenarioRegistry::global().make("DS-1", rng);
  EXPECT_EQ(s.key, "DS-1");
  EXPECT_DOUBLE_EQ(s.duration, 40.0);
  EXPECT_DOUBLE_EQ(s.ego_cruise_speed, 45.0 / 3.6);
  EXPECT_EQ(s.target_id, 1);
  ASSERT_EQ(s.actors.size(), 1u);
  EXPECT_EQ(s.actors[0].type(), sim::ActorType::kVehicle);
  EXPECT_DOUBLE_EQ(s.actors[0].state().position.x, 60.0);
  EXPECT_DOUBLE_EQ(s.actors[0].state().position.y, 0.0);
}

TEST(ScenarioRegistryGolden, Ds2ThroughDs4MatchPreRedesignFactories) {
  stats::Rng rng(3);
  const auto& reg = ScenarioRegistry::global();

  const Scenario ds2 = reg.make("DS-2", rng);
  EXPECT_DOUBLE_EQ(ds2.duration, 35.0);
  ASSERT_EQ(ds2.actors.size(), 1u);
  EXPECT_EQ(ds2.actors[0].type(), sim::ActorType::kPedestrian);
  EXPECT_DOUBLE_EQ(ds2.actors[0].state().position.x, 70.0);
  EXPECT_DOUBLE_EQ(ds2.actors[0].state().position.y, -6.5);

  const Scenario ds3 = reg.make("DS-3", rng);
  EXPECT_DOUBLE_EQ(ds3.duration, 25.0);
  ASSERT_EQ(ds3.actors.size(), 1u);
  EXPECT_DOUBLE_EQ(ds3.actors[0].state().position.x, 120.0);
  EXPECT_DOUBLE_EQ(ds3.actors[0].state().position.y,
                   sim::Road::kParkingLaneCenter);

  const Scenario ds4 = reg.make("DS-4", rng);
  EXPECT_DOUBLE_EQ(ds4.duration, 25.0);
  ASSERT_EQ(ds4.actors.size(), 1u);
  EXPECT_EQ(ds4.actors[0].type(), sim::ActorType::kPedestrian);
  EXPECT_DOUBLE_EQ(ds4.actors[0].state().position.x, 110.0);
  EXPECT_DOUBLE_EQ(ds4.actors[0].state().position.y,
                   sim::Road::kParkingLaneCenter);
}

TEST(ScenarioRegistryGolden, Ds5ConsumesRngIdenticallyAcrossBuilds) {
  // DS-5 draws its NPC layout from the Rng; the same seed must give the
  // same world (actor-for-actor), different seeds a different one.
  stats::Rng r1(11);
  stats::Rng r2(11);
  stats::Rng r3(12);
  const Scenario a = ScenarioRegistry::global().make("DS-5", r1);
  const Scenario b = ScenarioRegistry::global().make("DS-5", r2);
  const Scenario c = ScenarioRegistry::global().make("DS-5", r3);
  ASSERT_EQ(a.actors.size(), b.actors.size());
  for (std::size_t i = 0; i < a.actors.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.actors[i].state().position.x,
                     b.actors[i].state().position.x);
    EXPECT_DOUBLE_EQ(a.actors[i].state().position.y,
                     b.actors[i].state().position.y);
  }
  bool differs = a.actors.size() != c.actors.size();
  for (std::size_t i = 0; !differs && i < a.actors.size(); ++i) {
    differs =
        a.actors[i].state().position.x != c.actors[i].state().position.x;
  }
  EXPECT_TRUE(differs);
}

// --------------------------------------------- parameter overrides

TEST(ScenarioRegistry, ParameterOverridesReachTheWorld) {
  const auto& reg = ScenarioRegistry::global();
  stats::Rng rng(3);
  ScenarioParams p = reg.defaults("DS-1");
  p.target_gap = 85.0;
  p.target_speed_kph = 30.0;
  p.duration = 55.0;
  const Scenario s = reg.make("DS-1", p, rng);
  EXPECT_DOUBLE_EQ(s.duration, 55.0);
  ASSERT_EQ(s.actors.size(), 1u);
  EXPECT_DOUBLE_EQ(s.actors[0].state().position.x, 85.0);
}

TEST(ScenarioRegistry, NamedParamAccess) {
  ScenarioParams p;
  sim::set_scenario_param(p, "target_gap", 77.0);
  EXPECT_DOUBLE_EQ(p.target_gap, 77.0);
  sim::set_scenario_param(p, "npc_vehicles", 6.0);
  EXPECT_EQ(p.npc_vehicles, 6);
  EXPECT_DOUBLE_EQ(sim::get_scenario_param(p, "npc_vehicles"), 6.0);
  EXPECT_THROW(sim::set_scenario_param(p, "not_a_param", 1.0),
               std::invalid_argument);
  const auto names = sim::scenario_param_names();
  EXPECT_EQ(names.size(), 9u);
  EXPECT_EQ(names.front(), "duration");
}

TEST(ScenarioRegistry, ParameterOverrideCampaignsAreDeterministic) {
  // Same key + params + seed -> identical RunResult, run after run.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  CampaignSpec spec{"dense-nosh", "dense-follow",
                    core::AttackVector::kMoveOut, AttackMode::kNoSh, 3,
                    1357};
  spec.params = sim::ScenarioRegistry::global().defaults("dense-follow");
  spec.params->npc_vehicles = 7;
  spec.params->target_speed_kph = 22.0;
  const auto a = runner.run(spec);
  const auto b = runner.run(spec);
  ASSERT_EQ(a.n(), b.n());
  for (int i = 0; i < a.n(); ++i) {
    const auto& ra = a.runs[static_cast<std::size_t>(i)];
    const auto& rb = b.runs[static_cast<std::size_t>(i)];
    EXPECT_EQ(ra.eb, rb.eb) << i;
    EXPECT_EQ(ra.crash, rb.crash) << i;
    EXPECT_DOUBLE_EQ(ra.min_delta, rb.min_delta) << i;
    EXPECT_DOUBLE_EQ(ra.end_time, rb.end_time) << i;
  }
  // And the override demonstrably changes the world vs family defaults.
  CampaignSpec defaults_spec = spec;
  defaults_spec.params.reset();
  stats::Rng rng_a(5);
  stats::Rng rng_b(5);
  const auto& reg = sim::ScenarioRegistry::global();
  EXPECT_NE(reg.make(spec.scenario, *spec.params, rng_a).actors.size(),
            reg.make(defaults_spec.scenario, rng_b).actors.size());
}

// ------------------------------------------------- campaign grid builder

TEST(CampaignGridBuilder, Table2GridMatchesHistoricalHandRolledList) {
  // table2_campaigns is now grid-built; its specs must equal the old
  // hand-rolled table cell for cell (names, scenario keys, modes, seeds).
  const auto specs = experiments::table2_campaigns(10, 500);
  ASSERT_EQ(specs.size(), 7u);
  const struct {
    const char* name;
    const char* scenario;
    AttackMode mode;
  } expected[] = {
      {"DS-1-Disappear-R", "DS-1", AttackMode::kRobotack},
      {"DS-2-Disappear-R", "DS-2", AttackMode::kRobotack},
      {"DS-1-Move_Out-R", "DS-1", AttackMode::kRobotack},
      {"DS-2-Move_Out-R", "DS-2", AttackMode::kRobotack},
      {"DS-3-Move_In-R", "DS-3", AttackMode::kRobotack},
      {"DS-4-Move_In-R", "DS-4", AttackMode::kRobotack},
      {"DS-5-Baseline-Random", "DS-5", AttackMode::kRandomBaseline},
  };
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].name, expected[i].name) << i;
    EXPECT_EQ(specs[i].scenario, expected[i].scenario) << i;
    EXPECT_EQ(specs[i].mode, expected[i].mode) << i;
    EXPECT_EQ(specs[i].runs, 10) << i;
    EXPECT_EQ(specs[i].seed, 500 + i * 1000) << i;
    EXPECT_FALSE(specs[i].params.has_value()) << i;
  }
  const auto nosh = experiments::no_sh_campaigns(10, 500);
  ASSERT_EQ(nosh.size(), 6u);
  EXPECT_EQ(nosh.front().name, "DS-1-Disappear-RwoSH");
  EXPECT_EQ(nosh.back().name, "DS-4-Move_In-RwoSH");
  EXPECT_EQ(nosh.back().seed, 500 + 5 * 1000);
}

TEST(CampaignGridBuilder, SweepBuildsParamCrossProduct) {
  const auto specs = CampaignGridBuilder()
                         .runs(4)
                         .seed(9)
                         .modes({AttackMode::kGolden})
                         .scenarios({"DS-1"})
                         .sweep("target_speed_kph", {20.0, 30.0})
                         .sweep("target_gap", {50.0, 70.0, 90.0})
                         .build();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "DS-1-Golden-target_speed_kph=20-target_gap=50");
  EXPECT_EQ(specs[5].name, "DS-1-Golden-target_speed_kph=30-target_gap=90");
  ASSERT_TRUE(specs[4].params.has_value());
  EXPECT_DOUBLE_EQ(specs[4].params->target_speed_kph, 30.0);
  EXPECT_DOUBLE_EQ(specs[4].params->target_gap, 70.0);
  // Non-swept fields keep the family defaults.
  EXPECT_DOUBLE_EQ(specs[4].params->duration, 40.0);
  // Seeds keep counting across the grid.
  EXPECT_EQ(specs[5].seed, 9u + 5u * 1000u);
}

TEST(CampaignGridBuilder, GoldenAndBaselineCollapseVectorAxis) {
  // Golden runs carry no attacker and Baseline-Random randomizes its own
  // vector, so multi-vector grids must not duplicate those campaigns.
  const auto specs = CampaignGridBuilder()
                         .runs(2)
                         .seed(1)
                         .modes({AttackMode::kGolden, AttackMode::kNoSh})
                         .vectors({core::AttackVector::kDisappear,
                                   core::AttackVector::kMoveOut})
                         .scenarios({"DS-1"})
                         .build();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "DS-1-Golden");
  EXPECT_EQ(specs[1].name, "DS-1-Disappear-RwoSH");
  EXPECT_EQ(specs[2].name, "DS-1-Move_Out-RwoSH");
}

TEST(CampaignGridBuilder, RejectsBadInput) {
  EXPECT_THROW(CampaignGridBuilder().build(), std::invalid_argument);
  EXPECT_THROW(CampaignGridBuilder().scenarios({"DS-99"}).build(),
               std::out_of_range);
  EXPECT_THROW(CampaignGridBuilder().scenarios({"DS-1"}).sweep("bogus", {1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      CampaignGridBuilder().scenarios({"DS-1"}).sweep("target_gap", {}),
      std::invalid_argument);
}


// ------------------------------------------- victim-geometry metadata

TEST(VictimGeometry, BuiltinsResolveToThePaperMapping) {
  // Registration-time auto-resolution must reproduce Table I: only the
  // parking-lane "keep" geometries of DS-3/DS-4 stay out of the corridor.
  const auto& reg = sim::ScenarioRegistry::global();
  for (const char* family : {"DS-3", "DS-4"}) {
    EXPECT_EQ(reg.get(family).victim_geometry,
              sim::VictimGeometry::kOutOfCorridor)
        << family;
  }
  for (const char* family : {"DS-1", "DS-2", "DS-5", "cut-in",
                             "staggered-crossing", "dense-follow"}) {
    EXPECT_EQ(reg.get(family).victim_geometry,
              sim::VictimGeometry::kInCorridor)
        << family;
  }
}

TEST(VictimGeometry, AutoResolvesUserFamiliesByCorridorGeometry) {
  sim::ScenarioRegistry local;
  // A parked victim well outside the corridor, DS-3 style.
  const auto parked = [](const sim::ScenarioParams& p, stats::Rng&) {
    sim::Scenario s;
    s.key = "parked";
    s.duration = p.duration;
    sim::Actor victim(1, sim::ActorType::kVehicle, {p.target_gap, 5.5});
    s.actors.push_back(victim);
    s.target_id = 1;
    return s;
  };
  local.register_scenario({"parked-out", "victim holds the parking lane",
                           {}, parked});
  EXPECT_EQ(local.get("parked-out").victim_geometry,
            sim::VictimGeometry::kOutOfCorridor);

  // An in-lane lead vehicle, DS-1 style.
  const auto lead = [](const sim::ScenarioParams& p, stats::Rng&) {
    sim::Scenario s;
    s.key = "lead";
    s.duration = p.duration;
    sim::Actor victim(1, sim::ActorType::kVehicle, {p.target_gap, 0.0});
    s.actors.push_back(victim);
    s.target_id = 1;
    return s;
  };
  local.register_scenario({"lead-in", "in-lane lead", {}, lead});
  EXPECT_EQ(local.get("lead-in").victim_geometry,
            sim::VictimGeometry::kInCorridor);
}

TEST(VictimGeometry, ExplicitMetadataOverridesAutoResolution) {
  sim::ScenarioRegistry local;
  const auto lead = [](const sim::ScenarioParams& p, stats::Rng&) {
    sim::Scenario s;
    s.duration = p.duration;
    sim::Actor victim(1, sim::ActorType::kVehicle, {p.target_gap, 0.0});
    s.actors.push_back(victim);
    s.target_id = 1;
    return s;
  };
  local.register_scenario({"forced-out", "explicit override", {}, lead,
                           sim::VictimGeometry::kOutOfCorridor});
  EXPECT_EQ(local.get("forced-out").victim_geometry,
            sim::VictimGeometry::kOutOfCorridor);
}

}  // namespace
}  // namespace rt
