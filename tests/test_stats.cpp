#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "stats/fit.hpp"
#include "stats/histogram.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace rt::stats {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DeriveIndependentOfDrawCount) {
  // derive(stream) must not depend on how many draws were made before.
  Rng a(5);
  Rng b(5);
  (void)b.uniform(0.0, 1.0);  // b consumed one draw
  // Note: derive() peeks the engine's next output without consuming from
  // the caller's perspective of the derived stream identity.
  Rng da = a.derive(7);
  Rng db = Rng(5).derive(7);
  EXPECT_DOUBLE_EQ(da.uniform(0.0, 1.0), db.uniform(0.0, 1.0));
}

TEST(Rng, DeriveDistinctStreams) {
  Rng root(99);
  Rng a = root.derive(1);
  Rng b = root.derive(2);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform_int(0, 1000000) == b.uniform_int(0, 1000000)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BernoulliEdges) {
  Rng r(1);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
}

TEST(Rng, UniformIntBounds) {
  Rng r(2);
  for (int i = 0; i < 200; ++i) {
    const auto v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

// PR 8 noise migration: `normal` is a counter-based draw — exactly ONE
// engine word per call, mapped through the inverse CDF. These tests pin
// the definition and the stream-purity it buys. (The RT_LEGACY_NOISE
// escape hatch of the migration window has been removed.)

TEST(Rng, NormalConsumesExactlyOneEngineWord) {
  // The draw must equal the inverse-CDF map of the engine's next word, and
  // the engine must advance by exactly one word — no value-dependent
  // rejection loop. That makes draw sequences reproducible regardless of
  // what distributions are interleaved (stream purity).
  Rng a(2024);
  std::mt19937_64 shadow(2024);
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t word = shadow();
    const double u = (static_cast<double>(word >> 11) + 0.5) * 0x1.0p-53;
    const double expected = 1.5 + 0.6 * normal_quantile(u);
    EXPECT_DOUBLE_EQ(a.normal(1.5, 0.6), expected) << "draw " << i;
  }
  // Engines are in lockstep after any number of draws.
  EXPECT_EQ(a.engine()(), shadow());
}

TEST(Rng, NormalStreamPureUnderInterleaving) {
  // Interleaving normal draws with other draws shifts the stream by a
  // CONSTANT offset per draw: n normals always consume exactly n words.
  Rng interleaved(77);
  Rng plain(77);
  (void)interleaved.normal(0.0, 1.0);
  (void)interleaved.normal(5.0, 2.0);
  (void)plain.engine()();
  (void)plain.engine()();
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(interleaved.uniform(0.0, 1.0),
                     plain.uniform(0.0, 1.0));
  }
}

TEST(Rng, NormalCounterBasedStatisticalSanity) {
  // 1e6 draws: fitted mean/sigma must recover the parameters well within
  // Monte-Carlo tolerance (3 sigma of the estimator's own stddev is about
  // 0.002 at this n; 0.01 leaves margin).
  Rng rng(13);
  std::vector<double> xs;
  xs.reserve(1000000);
  for (int i = 0; i < 1000000; ++i) xs.push_back(rng.normal(1.5, 0.6));
  const NormalFit fit = fit_normal(xs);
  EXPECT_NEAR(fit.mu, 1.5, 0.01);
  EXPECT_NEAR(fit.sigma, 0.6, 0.01);
  // Tail sanity: the inverse-CDF map must produce two-sided tails (about
  // 1350 draws beyond +/-3 sigma each at this n).
  int lo_tail = 0;
  int hi_tail = 0;
  for (const double x : xs) {
    if (x < 1.5 - 3.0 * 0.6) ++lo_tail;
    if (x > 1.5 + 3.0 * 0.6) ++hi_tail;
  }
  EXPECT_GT(lo_tail, 900);
  EXPECT_LT(lo_tail, 1900);
  EXPECT_GT(hi_tail, 900);
  EXPECT_LT(hi_tail, 1900);
}

TEST(Rng, NanParametersThrow) {
  // NaN parameters put the std distributions into undefined behaviour;
  // every draw API rejects them loudly instead.
  Rng r(3);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)r.uniform(nan, 1.0), std::invalid_argument);
  EXPECT_THROW((void)r.uniform(0.0, nan), std::invalid_argument);
  EXPECT_THROW((void)r.normal(nan, 1.0), std::invalid_argument);
  EXPECT_THROW((void)r.normal(0.0, nan), std::invalid_argument);
  EXPECT_THROW((void)r.exponential(nan), std::invalid_argument);
  EXPECT_THROW((void)r.bernoulli(nan), std::invalid_argument);
  // The generator stays usable after a rejected call.
  EXPECT_NO_THROW((void)r.normal(0.0, 1.0));
  EXPECT_NO_THROW((void)r.bernoulli(0.5));
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(normal_quantile(0.99), 2.326348, 1e-4);
  EXPECT_NEAR(normal_quantile(0.01), -2.326348, 1e-4);
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

TEST(FitNormal, RecoversParameters) {
  Rng rng(7);
  std::vector<double> xs;
  xs.reserve(20000);
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal(1.5, 0.6));
  const NormalFit fit = fit_normal(xs);
  EXPECT_NEAR(fit.mu, 1.5, 0.02);
  EXPECT_NEAR(fit.sigma, 0.6, 0.02);
  EXPECT_NEAR(fit.p99(), 1.5 + 0.6 * 2.326348, 0.05);
}

TEST(FitNormal, EmptyInput) {
  const NormalFit fit = fit_normal({});
  EXPECT_DOUBLE_EQ(fit.mu, 0.0);
  EXPECT_DOUBLE_EQ(fit.sigma, 0.0);
}

TEST(FitNormal, PdfIntegratesToOne) {
  const NormalFit fit{0.0, 1.0};
  double integral = 0.0;
  for (double x = -6.0; x <= 6.0; x += 0.01) integral += fit.pdf(x) * 0.01;
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(FitExponential, RecoversRate) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(1.0 + rng.exponential(0.7));
  const ExponentialFit fit = fit_exponential(xs, 1.0);
  EXPECT_NEAR(fit.lambda, 0.7, 0.03);
  EXPECT_NEAR(fit.quantile(0.99), 1.0 + std::log(100.0) / fit.lambda, 0.5);
}

TEST(FitExponential, DegenerateInput) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const ExponentialFit fit = fit_exponential(xs, 1.0);
  EXPECT_DOUBLE_EQ(fit.lambda, 0.0);
  EXPECT_DOUBLE_EQ(fit.quantile(0.5), 1.0);
}

TEST(Summary, MeanAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Summary, PercentileInterpolation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101.0), std::invalid_argument);
}

TEST(Summary, PercentileUnsortedInput) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Rng, FromStreamReproducible) {
  // The same (seed, stream) pair must always open the same sequence.
  for (std::uint64_t stream : {0ULL, 1ULL, 2ULL, 17ULL, 1ULL << 40}) {
    Rng a = Rng::from_stream(999, stream);
    Rng b = Rng::from_stream(999, stream);
    for (int i = 0; i < 50; ++i) {
      EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
    }
  }
}

TEST(Rng, FromStreamDistinctStreamsDiffer) {
  Rng a = Rng::from_stream(7, 1);
  Rng b = Rng::from_stream(7, 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.engine()() == b.engine()();
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, FromStreamDistinctSeedsDiffer) {
  Rng a = Rng::from_stream(7, 1);
  Rng b = Rng::from_stream(8, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.engine()() == b.engine()();
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, FromStreamUncorrelatedSmokeCheck) {
  // Adjacent streams of one seed should look independent: the mean of each
  // stream and the correlation between sibling streams both stay near their
  // iid expectations. This is a smoke check, not a statistical proof.
  const int kStreams = 64;
  const int kDraws = 256;
  double corr_accum = 0.0;
  for (int s = 0; s < kStreams; ++s) {
    Rng a = Rng::from_stream(123, static_cast<std::uint64_t>(s));
    Rng b = Rng::from_stream(123, static_cast<std::uint64_t>(s) + 1);
    double mean_a = 0.0;
    double mean_b = 0.0;
    double cross = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      const double xa = a.uniform(0.0, 1.0);
      const double xb = b.uniform(0.0, 1.0);
      mean_a += xa;
      mean_b += xb;
      cross += (xa - 0.5) * (xb - 0.5);
    }
    mean_a /= kDraws;
    mean_b /= kDraws;
    // Mean of kDraws U(0,1) draws: sd ~= 0.289/sqrt(256) ~= 0.018.
    EXPECT_NEAR(mean_a, 0.5, 0.1);
    EXPECT_NEAR(mean_b, 0.5, 0.1);
    corr_accum += cross / kDraws / (1.0 / 12.0);  // normalized correlation
  }
  EXPECT_NEAR(corr_accum / kStreams, 0.0, 0.05);
}

TEST(Rng, FromStreamIndependentOfParentState) {
  // from_stream is a static pure function: drawing from some other Rng
  // beforehand can't perturb it (unlike a shared-engine scheme would).
  Rng noise(55);
  for (int i = 0; i < 10; ++i) (void)noise.uniform(0.0, 1.0);
  Rng a = Rng::from_stream(42, 3);
  Rng b = Rng::from_stream(42, 3);
  EXPECT_EQ(a.engine()(), b.engine()());
}

TEST(Summary, Boxplot) {
  std::vector<double> xs;
  for (int i = 1; i <= 101; ++i) xs.push_back(i);
  const BoxplotStats s = boxplot(xs);
  EXPECT_EQ(s.n, 101u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 51.0);
  EXPECT_DOUBLE_EQ(s.q1, 26.0);
  EXPECT_DOUBLE_EQ(s.q3, 76.0);
  EXPECT_DOUBLE_EQ(s.max, 101.0);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-3.0);   // clamped into first bin
  h.add(100.0);  // clamped into last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_NEAR(h.bin_center(0), 0.5, 1e-12);
  EXPECT_GT(h.density(0), 0.0);
  EXPECT_FALSE(h.render(20, true).empty());
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace rt::stats
