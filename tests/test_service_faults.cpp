// Chaos suite for the rt::service fault-injection layer (PR 9): drives a
// (fault type x injection site x seed) matrix through the sharded
// scheduler, the cell cache, the campaign service and the real
// campaign_server binary, asserting the robustness contract everywhere:
// under ANY armed fault schedule the stack either produces bit-identical
// results (full recovery) or clean, typed degradation — never a hang, a
// crash, or a silently partial result.
//
// Fault schedules are counter-based (stats::Rng::from_stream over the plan
// seed), so every run of this suite injects exactly the same faults at the
// same operations. RT_FAULT_SEEDS shrinks the seed set (the ASan lane runs
// with RT_FAULT_SEEDS=1, mirroring the fuzz lane's RT_FUZZ_SAMPLES).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "experiments/campaign.hpp"
#include "experiments/campaign_grid.hpp"
#include "experiments/campaign_serde.hpp"
#include "experiments/transfer_matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"
#include "service/campaign_service.hpp"
#include "service/cell_cache.hpp"
#include "service/fault_injection.hpp"
#include "service/sharded_scheduler.hpp"
#include "sim/scenario_registry.hpp"

namespace rt::service {
namespace {

namespace fs = std::filesystem;
using experiments::AttackMode;
using experiments::CampaignErrorCode;
using experiments::CampaignResult;
using experiments::CampaignRunner;
using experiments::CampaignScheduler;
using experiments::CampaignSpec;
using experiments::LoopConfig;
using Clock = std::chrono::steady_clock;

int fault_seeds() {
  const char* v = std::getenv("RT_FAULT_SEEDS");
  if (v == nullptr || v[0] == '\0') return 3;
  return std::max(1, std::atoi(v));
}

std::string grid_bytes(const std::vector<CampaignResult>& results) {
  std::string blob;
  for (const auto& r : results) {
    blob += experiments::serialize_campaign_result(r);
  }
  return blob;
}

std::string scratch_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

CampaignSpec small_spec(const char* name = "DS-1-chaos",
                        std::uint64_t seed = 4242, int runs = 2) {
  return {name, "DS-1", core::AttackVector::kDisappear, AttackMode::kNoSh,
          runs, seed};
}

/// The hermetic 2-spec / 4-cell grid the chaos matrix runs (NoSh mode, no
/// oracles — every cell is a pure function of its seeds).
std::vector<CampaignSpec> chaos_grid() {
  return {small_spec("chaos-a", 910), small_spec("chaos-b", 911)};
}

FaultPlan one_rule(std::uint64_t seed, FaultSite site, FaultType type,
                   double rate = 1.0, int max_faults = -1,
                   int skip_ops = 0) {
  FaultPlan plan;
  plan.seed = seed;
  plan.rules.push_back({site, type, rate, max_faults, skip_ops});
  return plan;
}

// --------------------------------------------------------- FaultInjector

TEST(FaultInjector, DecisionSequenceIsAPureFunctionOfTheSeed) {
  auto trace = [](std::uint64_t seed, std::uint64_t worker) {
    ArmedFaults armed(
        one_rule(seed, FaultSite::kPipeWrite, FaultType::kIoError, 0.5));
    FaultInjector::instance().set_worker(worker);
    std::vector<FaultType> out;
    for (int i = 0; i < 200; ++i) {
      out.push_back(FaultInjector::instance().next(FaultSite::kPipeWrite).type);
    }
    return out;
  };
  const auto a = trace(7, 0);
  EXPECT_EQ(a, trace(7, 0)) << "same seed, same schedule — always";
  EXPECT_NE(a, trace(8, 0)) << "another seed draws another schedule";
  EXPECT_NE(a, trace(7, 1)) << "another worker draws another schedule";
  // At rate 0.5 both outcomes must actually occur.
  EXPECT_NE(std::count(a.begin(), a.end(), FaultType::kIoError), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), FaultType::kNone), 0);
}

TEST(FaultInjector, SkipOpsAndMaxFaultsBoundTheSchedule) {
  ArmedFaults armed(one_rule(1, FaultSite::kCacheWrite, FaultType::kEnospc,
                             1.0, /*max_faults=*/2, /*skip_ops=*/3));
  auto& inj = FaultInjector::instance();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(inj.next(FaultSite::kCacheWrite).type, FaultType::kNone)
        << "op " << i << " is within skip_ops";
  }
  EXPECT_EQ(inj.next(FaultSite::kCacheWrite).type, FaultType::kEnospc);
  EXPECT_EQ(inj.next(FaultSite::kCacheWrite).type, FaultType::kEnospc);
  EXPECT_EQ(inj.next(FaultSite::kCacheWrite).type, FaultType::kNone)
      << "max_faults exhausted";
  EXPECT_EQ(inj.injected(FaultSite::kCacheWrite), 2u);
  EXPECT_EQ(inj.ops(FaultSite::kCacheWrite), 6u);
  EXPECT_EQ(inj.injected_total(), 2u);
}

TEST(FaultInjector, OtherSitesAreUntouched) {
  ArmedFaults armed(
      one_rule(1, FaultSite::kPipeWrite, FaultType::kIoError, 1.0));
  EXPECT_EQ(FaultInjector::instance().next(FaultSite::kPipeRead).type,
            FaultType::kNone);
  EXPECT_EQ(FaultInjector::instance().next(FaultSite::kFork).type,
            FaultType::kNone);
}

TEST(FaultInjector, ArmFromEnvParsesTheChaosSpec) {
  ::setenv("RT_CHAOS",
           "seed=7 site=client-write type=disconnect rate=1.0 max=2", 1);
  ASSERT_TRUE(FaultInjector::instance().arm_from_env());
  EXPECT_TRUE(FaultInjector::instance().armed());
  EXPECT_EQ(FaultInjector::instance().next(FaultSite::kClientWrite).type,
            FaultType::kDisconnect);
  EXPECT_EQ(FaultInjector::instance().next(FaultSite::kClientWrite).type,
            FaultType::kDisconnect);
  EXPECT_EQ(FaultInjector::instance().next(FaultSite::kClientWrite).type,
            FaultType::kNone);
  FaultInjector::instance().disarm();

  ::setenv("RT_CHAOS", "site=bogus type=disconnect", 1);
  EXPECT_FALSE(FaultInjector::instance().arm_from_env());
  ::setenv("RT_CHAOS", "not-a-kv-pair", 1);
  EXPECT_FALSE(FaultInjector::instance().arm_from_env());
  ::unsetenv("RT_CHAOS");
  EXPECT_FALSE(FaultInjector::instance().arm_from_env());
}

// ----------------------------------------------------------- sys_* shims

TEST(FaultShims, ShortWritesAreAbsorbedByWriteAll) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload(300, 'x');
  {
    ArmedFaults armed(
        one_rule(3, FaultSite::kPipeWrite, FaultType::kShortWrite, 1.0));
    // EVERY write is short, yet write_all_fd converges (each call makes
    // progress) and the reader sees the complete buffer.
    ASSERT_TRUE(write_all_fd(FaultSite::kPipeWrite, fds[1], payload.data(),
                             payload.size()));
    EXPECT_GE(FaultInjector::instance().injected(FaultSite::kPipeWrite), 2u);
  }
  ::close(fds[1]);
  std::string got(payload.size(), '\0');
  std::size_t off = 0;
  ssize_t n = 0;
  while (off < got.size() &&
         (n = ::read(fds[0], got.data() + off, got.size() - off)) > 0) {
    off += static_cast<std::size_t>(n);
  }
  ::close(fds[0]);
  EXPECT_EQ(got, payload);
}

TEST(FaultShims, DisconnectFailsWithEpipe) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ArmedFaults armed(
      one_rule(4, FaultSite::kClientWrite, FaultType::kDisconnect, 1.0));
  errno = 0;
  EXPECT_FALSE(write_all_fd(FaultSite::kClientWrite, fds[0], "hi", 2));
  EXPECT_EQ(errno, EPIPE);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FaultShims, CorruptFrameFlipsExactlyOneByte) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload(64, 'A');
  {
    ArmedFaults armed(one_rule(5, FaultSite::kPipeWrite,
                               FaultType::kCorruptFrame, 1.0,
                               /*max_faults=*/1));
    ASSERT_TRUE(write_all_fd(FaultSite::kPipeWrite, fds[1], payload.data(),
                             payload.size()));
  }
  ::close(fds[1]);
  std::string got(payload.size(), '\0');
  std::size_t off = 0;
  ssize_t n = 0;
  while (off < got.size() &&
         (n = ::read(fds[0], got.data() + off, got.size() - off)) > 0) {
    off += static_cast<std::size_t>(n);
  }
  ::close(fds[0]);
  int flipped = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (got[i] != payload[i]) {
      ++flipped;
      EXPECT_EQ(got[i], payload[i] ^ 0x20);
    }
  }
  EXPECT_EQ(flipped, 1);
}

// ------------------------------------------------- scheduler chaos matrix

struct MatrixEntry {
  FaultSite site;
  FaultType type;
  double rate{1.0};
  int max_faults{-1};
};

// Every meaningful (site, type) pair of the pipe/fork plane. EINTR storms
// are capped per rule (an unlimited 100%-EINTR schedule is a livelock by
// definition — the uncapped variant is covered by the deadline tests,
// where the single read budget bounds it). Worker hangs get their own
// timeout-bounded test below.
const MatrixEntry kSchedulerMatrix[] = {
    {FaultSite::kPipeWrite, FaultType::kShortWrite},
    {FaultSite::kPipeWrite, FaultType::kEintr, 1.0, 9},
    {FaultSite::kPipeWrite, FaultType::kIoError},
    {FaultSite::kPipeWrite, FaultType::kIoError, 0.5},
    {FaultSite::kPipeWrite, FaultType::kTruncateFrame},
    {FaultSite::kPipeWrite, FaultType::kCorruptFrame},
    {FaultSite::kPipeRead, FaultType::kEintr, 1.0, 9},
    {FaultSite::kPipeRead, FaultType::kIoError},
    {FaultSite::kPipePoll, FaultType::kEintr, 1.0, 9},
    {FaultSite::kPipePoll, FaultType::kIoError},
    {FaultSite::kFork, FaultType::kForkEagain},
    {FaultSite::kFork, FaultType::kForkEagain, 0.5},
};

TEST(ChaosMatrix, EveryFaultSiteRecoversToBitIdenticalResults) {
  // The headline robustness pin: for every (site, type) pair and every
  // seed, a fully-armed sharded run must still reassemble the grid
  // BIT-IDENTICALLY — worker deaths re-run, corrupt/truncated frames are
  // detected by the frame checksum and re-run, fork failures fall through
  // to the threaded in-process path. No typed errors, because nothing here
  // can make a cell unrecoverable.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const auto specs = chaos_grid();
  const std::string reference =
      grid_bytes(CampaignScheduler(runner, 1).run_all(specs));

  ShardOptions opts;
  opts.workers = 2;
  opts.max_retries = 1;
  opts.retry_backoff_ms = 1;
  opts.read_timeout_ms = 60000;
  const ShardedCampaignScheduler sharded(runner, opts);

  const int seeds = fault_seeds();
  for (const MatrixEntry& entry : kSchedulerMatrix) {
    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(s);
      const std::string label =
          std::string(to_string(entry.site)) + " x " +
          to_string(entry.type) + " seed=" + std::to_string(seed);
      ArmedFaults armed(one_rule(seed, entry.site, entry.type, entry.rate,
                                 entry.max_faults,
                                 /*skip_ops=*/s % 3));
      const GridOutcome out = sharded.run_all_checked(specs, RunControl{});
      EXPECT_TRUE(out.errors.empty()) << label;
      EXPECT_FALSE(out.first_failure) << label;
      EXPECT_EQ(grid_bytes(out.results), reference) << label;
    }
  }
}

TEST(ChaosMatrix, EightFamilyGridSurvivesAMixedFaultPlan) {
  // The full 8-family registry grid (the test_service bit-identity
  // workload) under a plan that arms SEVERAL sites at once — corrupted
  // frames, failing forks and flaky parent reads in the same run.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  experiments::CampaignGridBuilder builder;
  builder.runs(2).seed(1122).modes({AttackMode::kNoSh});
  for (const auto& family : sim::ScenarioRegistry::global().keys()) {
    builder.scenarios({family})
        .vectors({experiments::transfer_vector_for(family)})
        .add_grid();
  }
  const auto specs = builder.build();
  ASSERT_GE(specs.size(), 8u);
  const std::string reference =
      grid_bytes(CampaignScheduler(runner, 2).run_all(specs));

  ShardOptions opts;
  opts.workers = 3;
  opts.max_retries = 1;
  opts.retry_backoff_ms = 1;
  const ShardedCampaignScheduler sharded(runner, opts);
  FaultPlan plan;
  plan.seed = 77;
  plan.rules.push_back(
      {FaultSite::kPipeWrite, FaultType::kCorruptFrame, 0.2, -1, 0});
  plan.rules.push_back(
      {FaultSite::kFork, FaultType::kForkEagain, 0.5, -1, 0});
  plan.rules.push_back(
      {FaultSite::kPipeRead, FaultType::kIoError, 0.1, -1, 0});
  ArmedFaults armed(std::move(plan));
  const GridOutcome out = sharded.run_all_checked(specs, RunControl{});
  EXPECT_TRUE(out.errors.empty());
  EXPECT_EQ(grid_bytes(out.results), reference);
}

TEST(ChaosMatrix, SameSeedSameFaultSequenceAcrossRunsAndWorkerCounts) {
  // Reproducibility of the chaos itself: the same plan seed produces the
  // same store-failure pattern on every run (counter-based decisions), and
  // a different seed produces a different one. And whatever the fault
  // schedule does, results stay bit-identical at any worker count.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const auto specs = chaos_grid();
  const std::string reference =
      grid_bytes(CampaignScheduler(runner, 1).run_all(specs));

  auto store_pattern = [&](std::uint64_t seed) {
    CampaignCellCache cache({scratch_dir("chaos_pattern")});
    const CampaignResult r = runner.run(small_spec("pat", 1));
    ArmedFaults armed(
        one_rule(seed, FaultSite::kCacheWrite, FaultType::kIoError, 0.5));
    std::string pattern;
    for (int i = 0; i < 20; ++i) {
      pattern += cache.store(small_spec("pat", 1), r) ? '1' : '0';
    }
    return pattern;
  };
  const std::string p17 = store_pattern(17);
  EXPECT_EQ(p17, store_pattern(17));
  EXPECT_NE(p17, store_pattern(18));
  EXPECT_NE(p17.find('0'), std::string::npos);
  EXPECT_NE(p17.find('1'), std::string::npos);

  for (unsigned workers : {1u, 2u, 4u}) {
    ShardOptions opts;
    opts.workers = workers;
    opts.retry_backoff_ms = 1;
    const ShardedCampaignScheduler sharded(runner, opts);
    ArmedFaults armed(
        one_rule(9, FaultSite::kPipeWrite, FaultType::kIoError, 0.5));
    const GridOutcome out = sharded.run_all_checked(specs, RunControl{});
    EXPECT_TRUE(out.errors.empty()) << workers;
    EXPECT_EQ(grid_bytes(out.results), reference) << workers;
  }
}

TEST(ShardedScheduler, TotalForkFailureDegradesToThreadedExecution) {
  // fork() never succeeds: the grid must still complete bit-identically via
  // the in-process thread-pool fallback, with the degradation visible in
  // the stats instead of an exception.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const auto specs = chaos_grid();
  const std::string reference =
      grid_bytes(CampaignScheduler(runner, 1).run_all(specs));

  ShardOptions opts;
  opts.workers = 3;
  opts.max_retries = 1;
  opts.retry_backoff_ms = 1;
  opts.fallback_threads = 2;
  const ShardedCampaignScheduler sharded(runner, opts);
  ArmedFaults armed(
      one_rule(2, FaultSite::kFork, FaultType::kForkEagain, 1.0));
  const auto results = sharded.run_all(specs);
  EXPECT_EQ(grid_bytes(results), reference);
  EXPECT_GE(sharded.stats().fork_failures, 3);
  EXPECT_EQ(sharded.stats().fallback_threads, 2u);
  EXPECT_EQ(sharded.stats().cells_recovered_in_process, 4);
}

TEST(ShardedScheduler, HungWorkerIsKilledWithinTheReadTimeout) {
  // A wedged worker (first pipe write blocks forever) must be detected by
  // the read timeout, killed, and its cells recovered — bounded wall time,
  // bit-identical results.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const auto specs = chaos_grid();
  const std::string reference =
      grid_bytes(CampaignScheduler(runner, 1).run_all(specs));

  ShardOptions opts;
  opts.workers = 2;
  opts.max_retries = 0;  // straight to the in-process fallback
  opts.read_timeout_ms = 250;
  const ShardedCampaignScheduler sharded(runner, opts);
  ArmedFaults armed(one_rule(6, FaultSite::kPipeWrite, FaultType::kHang,
                             1.0, /*max_faults=*/1));
  const auto t0 = Clock::now();
  const auto results = sharded.run_all(specs);
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  EXPECT_EQ(grid_bytes(results), reference);
  EXPECT_GE(sharded.stats().worker_deaths, 2);
  EXPECT_LT(wall_s, 30.0) << "hang detection must be timeout-bounded";
}

TEST(ShardedScheduler, DeadlineExpiryYieldsTypedErrorsNotHangs) {
  // Every worker hangs AND the read timeout is far away: only the request
  // deadline bounds the run. Expiry must kill the workers and convert every
  // unfinished campaign into a kDeadlineExceeded record with NO partial
  // runs attached.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const auto specs = chaos_grid();
  ShardOptions opts;
  opts.workers = 2;
  opts.read_timeout_ms = 600000;
  const ShardedCampaignScheduler sharded(runner, opts);
  ArmedFaults armed(
      one_rule(8, FaultSite::kPipeWrite, FaultType::kHang, 1.0, 1));
  RunControl ctl;
  ctl.deadline = Clock::now() + std::chrono::milliseconds(300);
  const auto t0 = Clock::now();
  const GridOutcome out = sharded.run_all_checked(specs, ctl);
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  EXPECT_LT(wall_s, 30.0);
  EXPECT_TRUE(sharded.stats().deadline_expired);
  ASSERT_EQ(out.errors.size(), specs.size());
  for (std::size_t i = 0; i < out.errors.size(); ++i) {
    EXPECT_EQ(out.errors[i].spec_index, i);
    EXPECT_EQ(out.errors[i].code, CampaignErrorCode::kDeadlineExceeded);
    EXPECT_TRUE(out.results[i].runs.empty())
        << "an errored campaign must never carry partial runs";
  }
}

#if RT_OBS_TRACING
TEST(ShardedScheduler, TraceMergeSurvivesWorkerDeath) {
  // A worker dies mid-shard with spans still in its ring: those spans are
  // lost by design (the trace frame is the worker's LAST write), but the
  // merge must stay clean — no absorb failures, spans from the survivor and
  // the retry worker present, results bit-identical, and the death visible
  // in the metrics registry, not just ShardStats.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const auto specs = chaos_grid();
  const std::string reference =
      grid_bytes(CampaignScheduler(runner, 1).run_all(specs));

  const auto before = obs::MetricsRegistry::global().snapshot();
  obs::Tracer::global().clear();
  obs::Tracer::global().arm(obs::TraceConfig{1 << 12});
  ShardOptions opts;
  opts.workers = 2;
  opts.retry_backoff_ms = 1;
  opts.crash_shard = 0;       // first-wave worker for shard 0 ...
  opts.crash_after_cells = 1; // ... dies after streaming one cell
  const ShardedCampaignScheduler sharded(runner, opts);
  const auto results = sharded.run_all(specs);
  obs::Tracer::global().disarm();
  const auto after = obs::MetricsRegistry::global().snapshot();

  EXPECT_EQ(grid_bytes(results), reference);
  EXPECT_GE(sharded.stats().worker_deaths, 1);
  EXPECT_GE(sharded.stats().shard_retries, 1);
  EXPECT_EQ(obs::Tracer::global().absorb_failures(), 0u);

  const obs::ParsedTrace parsed =
      obs::parse_chrome_trace(obs::Tracer::global().render_chrome_trace());
  // Survivor + retry worker each shipped a shard_worker span; the dead
  // worker's ring never arrived.
  EXPECT_EQ(parsed.count_spans("shard_worker"), 2u);
  EXPECT_TRUE(parsed.has_span("shard_retry_wave"));
  const auto pids = parsed.span_pids();
  EXPECT_EQ(std::count(pids.begin(), pids.end(), 0u), 1) << "parent lane";
  EXPECT_EQ(pids.size(), 3u) << "parent + survivor + retry worker";
  obs::Tracer::global().clear();

  // The same incidents flow through the registry (cumulative, so deltas).
  const auto delta = [&](const char* name) {
    return after.counter(name) - before.counter(name);
  };
  EXPECT_EQ(delta("rt_shard_worker_deaths_total"),
            static_cast<std::uint64_t>(sharded.stats().worker_deaths));
  EXPECT_EQ(delta("rt_shard_retry_waves_total"),
            static_cast<std::uint64_t>(sharded.stats().shard_retries));
}
#endif  // RT_OBS_TRACING

// ------------------------------------------------------ cell cache chaos

TEST(CellCacheFaults, StoreIoErrorsDeclineAndLeaveNoEntry) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  CampaignCellCache cache({scratch_dir("chaos_store_eio")});
  const CampaignSpec spec = small_spec();
  const CampaignResult fresh = runner.run(spec);

  for (const FaultType type :
       {FaultType::kIoError, FaultType::kEnospc, FaultType::kEintr}) {
    SCOPED_TRACE(to_string(type));
    if (type == FaultType::kEintr) {
      // EINTR alone is absorbed by the write loop — the store SUCCEEDS.
      ArmedFaults armed(
          one_rule(11, FaultSite::kCacheWrite, type, 1.0, /*max=*/3));
      EXPECT_TRUE(cache.store(spec, fresh));
      fs::remove(cache.entry_path(spec));
      continue;
    }
    ArmedFaults armed(one_rule(11, FaultSite::kCacheWrite, type, 1.0));
    EXPECT_FALSE(cache.store(spec, fresh));
    EXPECT_FALSE(fs::exists(cache.entry_path(spec)))
        << "a declined store must not leave a live entry";
    EXPECT_FALSE(fs::exists(cache.entry_path(spec) + ".tmp"))
        << "a declined store must not leak its tmp file";
  }
  EXPECT_GE(cache.stats().io_errors, 2u);
  // Disarmed, the same store goes through durably.
  EXPECT_TRUE(cache.store(spec, fresh));
  ASSERT_TRUE(cache.lookup(spec).has_value());
}

TEST(CellCacheFaults, ShortWritesStillProduceADurableBitExactEntry) {
  // 100% short writes: write_all_fd keeps re-issuing the remainder, so the
  // entry lands complete — a torn tmp file can never become a live entry
  // because only a fully-written, fsynced tmp is renamed in.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  CampaignCellCache cache({scratch_dir("chaos_store_short")});
  const CampaignSpec spec = small_spec();
  const CampaignResult fresh = runner.run(spec);
  {
    ArmedFaults armed(one_rule(12, FaultSite::kCacheWrite,
                               FaultType::kShortWrite, 1.0));
    EXPECT_TRUE(cache.store(spec, fresh));
  }
  const auto hit = cache.lookup(spec);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(experiments::serialize_campaign_result(*hit),
            experiments::serialize_campaign_result(fresh));
}

TEST(CellCacheFaults, FsyncAndRenameFailuresDecline) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  CampaignCellCache cache({scratch_dir("chaos_store_sync")});
  const CampaignSpec spec = small_spec();
  const CampaignResult fresh = runner.run(spec);
  {
    ArmedFaults armed(one_rule(13, FaultSite::kCacheFsync,
                               FaultType::kIoError, 1.0, /*max=*/1));
    EXPECT_FALSE(cache.store(spec, fresh));
  }
  {
    ArmedFaults armed(one_rule(13, FaultSite::kCacheRename,
                               FaultType::kIoError, 1.0));
    EXPECT_FALSE(cache.store(spec, fresh));
  }
  EXPECT_FALSE(fs::exists(cache.entry_path(spec)));
  EXPECT_EQ(cache.stats().io_errors, 2u);
  EXPECT_EQ(cache.stats().stores, 0u);
}

TEST(CellCacheFaults, ReadIoErrorIsAMissNeverAnException) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  CampaignCellCache cache({scratch_dir("chaos_read_eio")});
  const CampaignSpec spec = small_spec();
  ASSERT_TRUE(cache.store(spec, runner.run(spec)));
  {
    ArmedFaults armed(
        one_rule(14, FaultSite::kCacheRead, FaultType::kIoError, 1.0));
    EXPECT_FALSE(cache.lookup(spec).has_value());
  }
  EXPECT_EQ(cache.stats().io_errors, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // And EINTR storms (bounded) are absorbed entirely.
  {
    ArmedFaults armed(one_rule(14, FaultSite::kCacheRead, FaultType::kEintr,
                               1.0, /*max=*/5));
    EXPECT_TRUE(cache.lookup(spec).has_value());
  }
}

TEST(CellCacheFaults, ContentChecksumCatchesSingleFlippedByte) {
  // The regression the header-v2 checksum exists for: one flipped byte
  // inside a hex-encoded double can still deserialize cleanly — without
  // the checksum that is a silently WRONG cached result.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  CampaignCellCache cache({scratch_dir("chaos_flip")});
  const CampaignSpec spec = small_spec();
  ASSERT_TRUE(cache.store(spec, runner.run(spec)));

  const std::string path = cache.entry_path(spec);
  std::string blob;
  {
    std::ifstream in(path, std::ios::binary);
    blob.assign(std::istreambuf_iterator<char>(in), {});
  }
  const std::size_t eol = blob.find('\n');
  ASSERT_NE(eol, std::string::npos);
  ASSERT_GT(blob.size(), eol + 64);
  blob[eol + 40] = blob[eol + 40] == '1' ? '2' : '1';  // payload byte flip
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << blob;
  }
  EXPECT_FALSE(cache.lookup(spec).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
}

TEST(CellCacheFaults, ZeroLengthAndV1EntriesAreCorruptAndStale) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  CampaignCellCache cache({scratch_dir("chaos_zero")});
  const CampaignSpec spec = small_spec();
  const CampaignResult fresh = runner.run(spec);

  // Zero-length file (a crash between open and write in some OTHER tool —
  // our own store can no longer produce one): corrupt, never served.
  { std::ofstream out(cache.entry_path(spec), std::ios::trunc); }
  EXPECT_FALSE(cache.lookup(spec).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);

  // A well-formed pre-checksum v1 header: stale (format generation), not
  // corrupt — the bytes are fine, the format moved on.
  {
    std::ofstream out(cache.entry_path(spec), std::ios::trunc);
    char fp_hex[32];
    std::snprintf(fp_hex, sizeof fp_hex, "%016llx",
                  static_cast<unsigned long long>(
                      campaign_cell_fingerprint(spec)));
    out << "RTCACHE 1 " << kCampaignCodeVersion << ' ' << fp_hex << '\n'
        << experiments::serialize_campaign_result(fresh);
  }
  EXPECT_FALSE(cache.lookup(spec).has_value());
  EXPECT_EQ(cache.stats().stale, 1u);
  EXPECT_EQ(cache.stats().corrupt, 1u);
}

// ------------------------------------------------- CampaignService chaos

TEST(CampaignServiceFaults, PersistentStoreFailuresLatchTheCacheOff) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  ServiceConfig cfg;
  cfg.cache = CacheConfig{scratch_dir("chaos_latch")};
  cfg.threads = 1;
  cfg.cache_fail_threshold = 2;
  CampaignService svc(runner, cfg);
  const std::vector<CampaignSpec> specs{small_spec("a", 1),
                                        small_spec("b", 2),
                                        small_spec("c", 3)};
  const std::string reference =
      grid_bytes(CampaignScheduler(runner, 1).run_all(specs));

  {
    ArmedFaults armed(
        one_rule(15, FaultSite::kCacheWrite, FaultType::kIoError, 1.0));
    const auto results = svc.run_grid(specs);
    EXPECT_EQ(grid_bytes(results), reference)
        << "a dead disk must not change results";
  }
  EXPECT_TRUE(svc.cache_degraded());
  EXPECT_GE(svc.cache_stats().io_errors, 2u);
  EXPECT_EQ(svc.cache_stats().stores, 0u);

  // Disk is healthy again, but the latch holds (no lookups, no stores):
  // results are still correct, just uncached.
  const auto again = svc.run_grid(specs);
  EXPECT_EQ(grid_bytes(again), reference);
  EXPECT_EQ(svc.last_request().cache_hits, 0u);
  EXPECT_EQ(svc.cache_stats().stores, 0u);
}

TEST(CampaignServiceFaults, DeadlineProducesTypedErrorsInProcess) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  ServiceConfig cfg;
  cfg.threads = 1;
  CampaignService svc(runner, cfg);
  GridRequest request;
  request.specs = chaos_grid();
  request.deadline_ms = 1e-6;  // expired before the first cell boundary
  const GridResponse response = svc.run_grid_checked(request);
  ASSERT_EQ(response.errors.size(), request.specs.size());
  for (const auto& err : response.errors) {
    EXPECT_EQ(err.code, CampaignErrorCode::kDeadlineExceeded);
    EXPECT_TRUE(response.results[err.spec_index].runs.empty());
  }
  EXPECT_EQ(svc.last_request().errors, request.specs.size());
}

TEST(CampaignServiceFaults, DeadlineProducesTypedErrorsSharded) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.shard.retry_backoff_ms = 1;
  CampaignService svc(runner, cfg);
  GridRequest request;
  request.specs = chaos_grid();
  request.deadline_ms = 1e-6;
  const GridResponse response = svc.run_grid_checked(request);
  ASSERT_EQ(response.errors.size(), request.specs.size());
  for (const auto& err : response.errors) {
    EXPECT_EQ(err.code, CampaignErrorCode::kDeadlineExceeded);
  }
}

TEST(CampaignServiceFaults, CheckedRequestsMatchUncheckedBytes) {
  // run_grid_checked with no deadline and no faults is byte-for-byte the
  // historical run_grid — the checked path is a superset, not a fork.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  ServiceConfig cfg;
  cfg.threads = 2;
  CampaignService svc(runner, cfg);
  GridRequest request;
  request.specs = chaos_grid();
  const GridResponse response = svc.run_grid_checked(request);
  EXPECT_TRUE(response.errors.empty());
  EXPECT_EQ(grid_bytes(response.results),
            grid_bytes(CampaignScheduler(runner, 1).run_all(request.specs)));
}

#ifdef RT_CAMPAIGN_SERVER_BIN

// ------------------------------------------------- campaign_server chaos
//
// These tests exec the REAL server binary over a Unix socket — the same
// artifact CI smokes — and drive it with raw-socket clients so client
// death, backpressure and shutdown behave exactly as in production.

std::string unique_socket_path() {
  static int counter = 0;
  return "/tmp/rt_chaos_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

struct ServerProcess {
  pid_t pid{-1};
  std::string socket_path;

  bool start(const std::vector<std::string>& extra_args,
             const char* chaos = nullptr) {
    socket_path = unique_socket_path();
    ::unlink(socket_path.c_str());
    pid = ::fork();
    if (pid == 0) {
      if (chaos != nullptr) {
        ::setenv("RT_CHAOS", chaos, 1);
      } else {
        ::unsetenv("RT_CHAOS");
      }
      ::unsetenv("RT_CAMPAIGN_CACHE");
      std::vector<std::string> args = {RT_CAMPAIGN_SERVER_BIN, "--socket",
                                       socket_path, "--no-oracles"};
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    // Wait for the socket to appear (or the child to die on startup).
    for (int i = 0; i < 1200; ++i) {
      if (::access(socket_path.c_str(), F_OK) == 0) return true;
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        pid = -1;
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return false;
  }

  /// Blocks for exit; returns the exit code (-1 on signal death).
  int wait_exit() {
    if (pid < 0) return -1;
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    pid = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  ~ServerProcess() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      (void)::waitpid(pid, nullptr, 0);
    }
    if (!socket_path.empty()) ::unlink(socket_path.c_str());
  }
};

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_line(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        ::write(fd, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until `terminators` lines equal to "end" or "busy" arrived (or
/// timeout/EOF). Returns everything read.
std::string read_response(int fd, int terminators = 1,
                          int timeout_ms = 120000) {
  std::string text;
  std::string buffer;
  int seen = 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (seen < terminators) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    if (left <= 0) break;
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, static_cast<int>(left));
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) break;
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t eol = 0;
    while ((eol = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, eol + 1);
      buffer.erase(0, eol + 1);
      text += line;
      if (line == "end\n" || line == "busy\n") ++seen;
    }
  }
  return text;
}

const char* kReqA = "run scenarios=DS-1 modes=RwoSH runs=2 seed=11";
const char* kReqB = "run scenarios=DS-1 modes=Golden runs=2 seed=22";

TEST(CampaignServer, ConcurrentClientsGetSerialBytesEvenWhenOneIsKilled) {
  ServerProcess server;
  ASSERT_TRUE(server.start({"--queue-limit", "16"}));

  // Serial reference: one client, both requests back to back.
  std::string serial_a;
  std::string serial_b;
  {
    const int fd = connect_unix(server.socket_path);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(send_line(fd, kReqA));
    serial_a = read_response(fd);
    ASSERT_TRUE(send_line(fd, kReqB));
    serial_b = read_response(fd);
    send_line(fd, "quit");
    ::close(fd);
  }
  ASSERT_NE(serial_a.find("end\n"), std::string::npos);
  ASSERT_NE(serial_b.find("end\n"), std::string::npos);
  ASSERT_NE(serial_a, serial_b);

  // Concurrent: two clients overlapping, while a third client is SIGKILLed
  // mid-stream (it sends a request and dies before reading the answer).
  const pid_t victim = ::fork();
  if (victim == 0) {
    const int fd = connect_unix(server.socket_path);
    if (fd >= 0) send_line(fd, kReqA);
    for (;;) ::pause();  // hold the connection open until SIGKILL
  }
  ASSERT_GT(victim, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ::kill(victim, SIGKILL);
  (void)::waitpid(victim, nullptr, 0);

  std::string got_a;
  std::string got_b;
  std::thread ta([&] {
    const int fd = connect_unix(server.socket_path);
    if (fd < 0) return;
    if (send_line(fd, kReqA)) got_a = read_response(fd);
    send_line(fd, "quit");
    ::close(fd);
  });
  std::thread tb([&] {
    const int fd = connect_unix(server.socket_path);
    if (fd < 0) return;
    if (send_line(fd, kReqB)) got_b = read_response(fd);
    send_line(fd, "quit");
    ::close(fd);
  });
  ta.join();
  tb.join();
  EXPECT_EQ(got_a, serial_a)
      << "a killed client must not perturb survivors' bytes";
  EXPECT_EQ(got_b, serial_b);

  // Graceful shutdown via the protocol: exit code 0, socket removed.
  const int fd = connect_unix(server.socket_path);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_line(fd, "shutdown"));
  EXPECT_EQ(server.wait_exit(), 0);
  ::close(fd);
  EXPECT_NE(::access(server.socket_path.c_str(), F_OK), 0)
      << "socket file must be unlinked on shutdown";
}

TEST(CampaignServer, BoundedQueueAnswersEveryRequestWithEndOrBusy) {
  ServerProcess server;
  ASSERT_TRUE(server.start({"--queue-limit", "1", "--threads", "1"}));
  const int fd = connect_unix(server.socket_path);
  ASSERT_GE(fd, 0);
  // Flood: more requests than the queue admits, in one burst. The
  // invariant is total accounting — every request is answered exactly
  // once, with rows+end (accepted) or busy (shed), and the server never
  // wedges.
  const int burst = 5;
  for (int i = 0; i < burst; ++i) ASSERT_TRUE(send_line(fd, kReqA));
  const std::string text = read_response(fd, burst);
  int ends = 0;
  int busys = 0;
  std::size_t pos = 0;
  std::string rest = text;
  for (std::size_t eol = 0; (eol = rest.find('\n')) != std::string::npos;
       rest.erase(0, eol + 1)) {
    const std::string line = rest.substr(0, eol);
    if (line == "end") ++ends;
    if (line == "busy") ++busys;
  }
  (void)pos;
  EXPECT_EQ(ends + busys, burst);
  EXPECT_GE(ends, 1) << "at least the first request must execute";

  send_line(fd, "shutdown");
  EXPECT_EQ(server.wait_exit(), 0);
  ::close(fd);
}

TEST(CampaignServer, SigtermDrainsAndExitsZero) {
  ServerProcess server;
  ASSERT_TRUE(server.start({}));
  const int fd = connect_unix(server.socket_path);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_line(fd, kReqA));
  const std::string response = read_response(fd);
  EXPECT_NE(response.find("end\n"), std::string::npos);
  ::kill(server.pid, SIGTERM);
  EXPECT_EQ(server.wait_exit(), 0);
  ::close(fd);
  EXPECT_NE(::access(server.socket_path.c_str(), F_OK), 0);
}

TEST(CampaignServer, DeadlineFieldYieldsTypedErrorRecords) {
  ServerProcess server;
  ASSERT_TRUE(server.start({"--threads", "1"}));
  const int fd = connect_unix(server.socket_path);
  ASSERT_GE(fd, 0);
  // A big grid with a 1 ms budget: the response must be typed deadline
  // errors (and a terminator), not a hang and not partial rows.
  ASSERT_TRUE(send_line(
      fd, "run scenarios=DS-1 modes=RwoSH runs=200 seed=3 deadline_ms=1"));
  const std::string response = read_response(fd);
  EXPECT_NE(response.find("error deadline-exceeded"), std::string::npos)
      << response;
  EXPECT_NE(response.find("end\n"), std::string::npos);
  send_line(fd, "shutdown");
  EXPECT_EQ(server.wait_exit(), 0);
  ::close(fd);
}

TEST(CampaignServer, RtChaosClientWriteFaultDropsOneClientNotTheServer) {
  // RT_CHAOS arms the injector inside the real server process: the first
  // client write fails (disconnect), that client is dropped, and the NEXT
  // client is served normally — client death (real or injected) is never
  // fatal to the service.
  ServerProcess server;
  ASSERT_TRUE(server.start(
      {}, "seed=5 site=client-write type=disconnect rate=1.0 max=1"));

  const int first = connect_unix(server.socket_path);
  ASSERT_GE(first, 0);
  ASSERT_TRUE(send_line(first, kReqA));
  // The injected fault eats the server's response write: we see EOF or
  // nothing, never a partial frame followed by a hang.
  const std::string dropped = read_response(first, 1, 30000);
  EXPECT_EQ(dropped.find("end\n"), std::string::npos);
  ::close(first);

  const int second = connect_unix(server.socket_path);
  ASSERT_GE(second, 0);
  ASSERT_TRUE(send_line(second, kReqA));
  const std::string served = read_response(second);
  EXPECT_NE(served.find("end\n"), std::string::npos)
      << "the fault budget (max=1) is spent; the next client must be served";
  send_line(second, "shutdown");
  EXPECT_EQ(server.wait_exit(), 0);
  ::close(second);
}

#endif  // RT_CAMPAIGN_SERVER_BIN

}  // namespace
}  // namespace rt::service
