// Property-based fuzzing of the scenario layer: hundreds of sampled
// (template, seed) configurations swept through the invariant suite
// (sim/invariants.hpp + experiments/scenario_search.hpp). Every failure
// prints a minimal reproducer — the corpus line that recreates it and the
// shrunk parameter spec — so a red run here pins directly into
// tests/corpus/scenarios.txt.
//
// RT_FUZZ_SAMPLES overrides the per-template sample count (default 24,
// i.e. 264 scenarios over the 11 built-in families); the sanitizer CI lane
// sets it low because closed-loop sweeps are ~30x slower under ASan.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "defense/monitor_registry.hpp"
#include "experiments/scenario_search.hpp"
#include "experiments/transfer_matrix.hpp"
#include "stats/hash.hpp"

namespace rt::experiments {
namespace {

int fuzz_samples() {
  if (const char* env = std::getenv("RT_FUZZ_SAMPLES")) {
    return std::max(2, std::atoi(env));
  }
  return 24;
}

std::vector<std::string> full_stack() {
  return defense::MonitorRegistry::global().keys();
}

LoopConfig monitored_loop() {
  LoopConfig loop;
  loop.monitors = full_stack();
  return loop;
}

/// Content hash of a short replay of the scenario: initial actor states
/// plus the world after every step of a few simulated seconds, so route,
/// trigger and plant differences all change the digest.
std::uint64_t replay_hash(const sim::Scenario& sc, int steps = 60) {
  std::uint64_t h = stats::fnv1a_str(stats::kFnv1aOffset, sc.key);
  h = stats::fnv1a_double(h, sc.duration);
  h = stats::fnv1a_u64(h, static_cast<std::uint64_t>(sc.target_id));
  sim::World world = sc.make_world();
  for (int i = 0; i <= steps; ++i) {
    h = stats::fnv1a_double(h, world.ego().x());
    h = stats::fnv1a_double(h, world.ego().speed());
    for (const sim::Actor& a : world.actors()) {
      h = stats::fnv1a_u64(h, static_cast<std::uint64_t>(a.id()));
      h = stats::fnv1a_u64(h, static_cast<std::uint64_t>(a.type()));
      h = stats::fnv1a_double(h, a.state().position.x);
      h = stats::fnv1a_double(h, a.state().position.y);
      h = stats::fnv1a_double(h, a.state().velocity.x);
      h = stats::fnv1a_double(h, a.state().velocity.y);
    }
    world.step(1.0 / 15.0, 0.0);
  }
  return h;
}

/// Failure text of one bad sample: the violations, the corpus line that
/// reproduces it verbatim, and the shrunk minimal parameter spec.
std::string diagnose(const sim::SampledScenario& sample,
                     const sim::InvariantReport& report) {
  const auto defaults =
      sim::ScenarioRegistry::global().defaults(sample.template_key);
  const auto fails = [&](const sim::ScenarioParams& p) {
    sim::SampledScenario candidate = sample;
    candidate.params = p;
    return !sim::check_scenario(candidate.make()).ok();
  };
  sim::SampledScenario minimal = sample;
  if (fails(sample.params)) {
    minimal.params = sim::shrink_params(sample.params, defaults, fails);
  }
  return report.to_string() + "\nreproducer: " + sample.corpus_line() +
         "\nminimal:    " + minimal.spec_string();
}

// ------------------------------------------------------------- sampling

TEST(ScenarioSampler, PureFunctionOfTemplateAndSeed) {
  const sim::ScenarioSampler a;
  const sim::ScenarioSampler b;
  for (const auto& key : a.templates()) {
    const auto sa = a.sample(key, 42);
    const auto sb = b.sample(key, 42);
    EXPECT_EQ(sa.spec_string(), sb.spec_string()) << key;
    EXPECT_EQ(replay_hash(sa.make()), replay_hash(sb.make())) << key;
    // make() itself is canonical: two worlds from one sample are identical.
    EXPECT_EQ(replay_hash(sa.make()), replay_hash(sa.make())) << key;
    // And the seed actually matters.
    EXPECT_NE(sa.spec_string(), a.sample(key, 43).spec_string()) << key;
  }
}

TEST(ScenarioSampler, BitIdenticalAtAnyThreadCount) {
  const sim::ScenarioSampler sampler;
  const auto templates = sampler.templates();
  const int per_template = 16;
  // Serial reference digests.
  std::vector<std::uint64_t> serial;
  for (const auto& key : templates) {
    for (int i = 0; i < per_template; ++i) {
      serial.push_back(replay_hash(
          sampler.sample(key, static_cast<std::uint64_t>(i)).make()));
    }
  }
  // The same work sliced over 8 threads hitting one shared sampler.
  std::vector<std::uint64_t> threaded(serial.size());
  std::vector<std::thread> workers;
  const std::size_t n = serial.size();
  for (unsigned w = 0; w < 8; ++w) {
    workers.emplace_back([&, w] {
      for (std::size_t j = w; j < n; j += 8) {
        const auto& key = templates[j / per_template];
        threaded[j] = replay_hash(
            sampler.sample(key, static_cast<std::uint64_t>(j % per_template))
                .make());
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(serial, threaded);
}

TEST(ScenarioSampler, SamplesStayInsideConfiguredRanges) {
  const sim::ScenarioSampler sampler;
  for (const auto& key : sampler.templates()) {
    const auto& table = sampler.ranges(key);
    for (int i = 0; i < 50; ++i) {
      const auto sample = sampler.sample(key, static_cast<std::uint64_t>(i));
      for (const auto& range : table) {
        const double v = sim::get_scenario_param(sample.params, range.name);
        EXPECT_GE(v, range.lo) << key << " seed " << i << " " << range.name;
        EXPECT_LE(v, range.hi) << key << " seed " << i << " " << range.name;
        if (range.integer) {
          EXPECT_DOUBLE_EQ(v, std::round(v))
              << key << " seed " << i << " " << range.name;
        }
      }
    }
  }
}

TEST(ScenarioSampler, SetRangesValidatesAndTakesEffect) {
  sim::ScenarioSampler sampler;
  EXPECT_THROW((void)sampler.ranges("no-such-family"), std::out_of_range);
  EXPECT_THROW(sampler.set_ranges("no-such-family", {}), std::out_of_range);
  EXPECT_THROW(sampler.set_ranges("DS-1", {{"no_such_param", 0.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(sampler.set_ranges("DS-1", {{"target_gap", 9.0, 3.0}}),
               std::invalid_argument);
  sampler.set_ranges("DS-1", {{"target_gap", 80.0, 90.0}});
  for (int i = 0; i < 20; ++i) {
    const auto s = sampler.sample("DS-1", static_cast<std::uint64_t>(i));
    EXPECT_GE(s.params.target_gap, 80.0);
    EXPECT_LE(s.params.target_gap, 90.0);
    // Unlisted params keep the family defaults.
    EXPECT_DOUBLE_EQ(
        s.params.duration,
        sim::ScenarioRegistry::global().defaults("DS-1").duration);
  }
}

// ------------------------------------------------------ invariant sweeps

TEST(ScenarioFuzz, StructuralAndCruiseInvariantsHoldAcrossAllTemplates) {
  const sim::ScenarioSampler sampler;
  const auto templates = sampler.templates();
  ASSERT_GE(templates.size(), 5u);
  const int per_template = fuzz_samples();
  int validated = 0;
  for (const auto& key : templates) {
    for (int i = 0; i < per_template; ++i) {
      const auto sample = sampler.sample(key, static_cast<std::uint64_t>(i));
      const auto report = sim::check_scenario(sample.make());
      EXPECT_TRUE(report.ok()) << diagnose(sample, report);
      ++validated;
    }
  }
  if (std::getenv("RT_FUZZ_SAMPLES") == nullptr) {
    EXPECT_GE(validated, 200);  // the acceptance floor at default settings
  }
}

TEST(ScenarioFuzz, GoldenRunsCleanAndMonitorsZeroFalsePositive) {
  // Closed-loop clean-run property on sampled worlds, full monitor stack
  // deployed: no collision, no accident label, ego inside its actuation
  // envelope, and not a single monitor alert. Any FP is a shrunk-reproducer
  // failure printing (template, seed).
  const LoopConfig loop = monitored_loop();
  const sim::ScenarioSampler sampler;
  const int per_template = std::max(2, fuzz_samples() / 4);
  for (const auto& key : sampler.templates()) {
    for (int i = 0; i < per_template; ++i) {
      // Offset stream: distinct seeds from the structural sweep.
      const auto sample =
          sampler.sample(key, 1000 + static_cast<std::uint64_t>(i));
      const auto check = check_clean_run(sample, loop);
      EXPECT_TRUE(check.ok()) << diagnose(sample, check.report);
    }
  }
}

TEST(ScenarioFuzz, SampledCampaignsBitIdenticalAcrossThreadCounts) {
  // The determinism contract extended to sampled configurations: a
  // campaign whose params came from the sampler aggregates bit-identically
  // at 1 and 8 threads (monitored, attacked, stochastic-family included).
  const sim::ScenarioSampler sampler;
  CampaignRunner runner(monitored_loop(), {});
  std::vector<CampaignSpec> specs;
  int spec_idx = 0;
  for (const auto& key : {"DS-2", "occlusion-reveal", "multi-lane-overtake"}) {
    const auto sample = sampler.sample(key, 7);
    CampaignSpec spec;
    spec.name = std::string("fuzz-") + key;
    spec.scenario = key;
    spec.vector = transfer_vector_for(key);
    spec.mode = AttackMode::kNoSh;
    spec.runs = 6;
    spec.seed = 4242 + static_cast<std::uint64_t>(spec_idx++);
    spec.params = sample.params;
    spec.monitors = full_stack();
    specs.push_back(std::move(spec));
  }
  const auto one = CampaignScheduler(runner, 1).run_all(specs);
  const auto many = CampaignScheduler(runner, 8).run_all(specs);
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t s = 0; s < one.size(); ++s) {
    ASSERT_EQ(one[s].n(), many[s].n()) << specs[s].name;
    for (int i = 0; i < one[s].n(); ++i) {
      const auto& a = one[s].runs[static_cast<std::size_t>(i)];
      const auto& b = many[s].runs[static_cast<std::size_t>(i)];
      EXPECT_EQ(a.eb, b.eb) << specs[s].name << " run " << i;
      EXPECT_EQ(a.crash, b.crash) << specs[s].name << " run " << i;
      EXPECT_DOUBLE_EQ(a.min_delta, b.min_delta)
          << specs[s].name << " run " << i;
      EXPECT_EQ(a.defense.flagged, b.defense.flagged)
          << specs[s].name << " run " << i;
      EXPECT_EQ(a.defense.detected, b.defense.detected)
          << specs[s].name << " run " << i;
    }
  }
}

// -------------------------------------------------------------- corpus

TEST(Corpus, ParserHandlesCommentsBlanksAndErrors) {
  const auto entries = sim::parse_corpus(
      "# pinned fuzz findings\n"
      "\n"
      "DS-1 42   # inline comment\n"
      "occlusion-reveal 5378431353750142001\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].template_key, "DS-1");
  EXPECT_EQ(entries[0].seed, 42u);
  EXPECT_EQ(entries[1].template_key, "occlusion-reveal");
  EXPECT_EQ(entries[1].seed, 5378431353750142001ULL);
  EXPECT_THROW((void)sim::parse_corpus("DS-1\n"), std::invalid_argument);
  EXPECT_THROW((void)sim::parse_corpus("DS-1 nine"), std::invalid_argument);
  EXPECT_THROW((void)sim::parse_corpus("DS-1 1 extra"),
               std::invalid_argument);
  EXPECT_THROW((void)sim::load_corpus("/no/such/corpus.txt"),
               std::runtime_error);
}

TEST(Corpus, CommittedCorpusReplaysCleanThroughFullSuite) {
  // The committed corpus pins the search frontier (the corners where the
  // attack wins) plus hand-picked seeds per family; every entry must stay a
  // valid, golden-safe, alert-free world as the generators evolve.
  const auto entries =
      sim::load_corpus(std::string(RT_CORPUS_DIR) + "/scenarios.txt");
  ASSERT_GE(entries.size(), 11u);
  const LoopConfig loop = monitored_loop();
  const sim::ScenarioSampler sampler;
  std::set<std::string> covered;
  for (const auto& entry : entries) {
    ASSERT_TRUE(sim::ScenarioRegistry::global().contains(entry.template_key))
        << entry.template_key;
    covered.insert(entry.template_key);
    const auto sample = sampler.sample(entry.template_key, entry.seed);
    const auto check = check_clean_run(sample, loop);
    EXPECT_TRUE(check.ok()) << diagnose(sample, check.report);
  }
  // The corpus spans every registered family.
  EXPECT_EQ(covered.size(),
            sim::ScenarioRegistry::global().keys().size());
}

// ------------------------------------------------------------ shrinking

TEST(Shrinker, ReducesToMinimalFailingConfiguration) {
  const auto defaults = sim::ScenarioRegistry::global().defaults("DS-1");
  // Synthetic failure: only big gaps combined with long durations fail.
  // Both thresholds sit above the DS-1 defaults (gap 60, duration 40) so
  // both fields genuinely participate in the shrink.
  const auto fails = [](const sim::ScenarioParams& p) {
    return p.target_gap > 100.0 && p.duration > 42.0;
  };
  sim::ScenarioParams failing = defaults;
  failing.target_gap = 160.0;
  failing.duration = 50.0;
  failing.ego_speed_kph = 33.0;      // irrelevant to the failure
  failing.npc_pedestrians = 5;       // irrelevant to the failure
  ASSERT_TRUE(fails(failing));
  const auto minimal = sim::shrink_params(failing, defaults, fails);
  EXPECT_TRUE(fails(minimal));  // the guarantee: still failing
  // Irrelevant fields return to their defaults.
  EXPECT_DOUBLE_EQ(minimal.ego_speed_kph, defaults.ego_speed_kph);
  EXPECT_EQ(minimal.npc_pedestrians, defaults.npc_pedestrians);
  // Relevant fields bisect down toward the threshold.
  EXPECT_LT(minimal.target_gap, 102.0);
  EXPECT_GT(minimal.target_gap, 100.0);
  EXPECT_LT(minimal.duration, 44.0);
  EXPECT_GT(minimal.duration, 42.0);
}

TEST(Shrinker, PassingPredicateOnDefaultsKeepsFailingValue) {
  const auto defaults = sim::ScenarioRegistry::global().defaults("DS-1");
  // Integer-field failure with a sharp threshold.
  const auto fails = [](const sim::ScenarioParams& p) {
    return p.npc_vehicles >= 6;
  };
  sim::ScenarioParams failing = defaults;
  failing.npc_vehicles = 8;
  const auto minimal = sim::shrink_params(failing, defaults, fails);
  EXPECT_TRUE(fails(minimal));
  EXPECT_EQ(minimal.npc_vehicles, 6);
}

// -------------------------------------------------------------- search

TEST(ScenarioSearch, DeterministicAcrossThreadCountsWithFrontier) {
  ScenarioSearchConfig cfg;
  cfg.templates = {"DS-1", "DS-2", "occlusion-reveal"};
  cfg.rounds = 2;
  cfg.samples_per_round = 6;
  cfg.runs_per_sample = 3;
  cfg.seed = 97;
  cfg.monitors = full_stack();
  const LoopConfig loop;
  cfg.threads = 1;
  const auto one = run_scenario_search(cfg, loop, {});
  cfg.threads = 8;
  const auto many = run_scenario_search(cfg, loop, {});
  ASSERT_FALSE(one.frontier.empty());
  ASSERT_EQ(one.evaluated.size(), many.evaluated.size());
  ASSERT_EQ(one.frontier.size(), many.frontier.size());
  for (std::size_t i = 0; i < one.frontier.size(); ++i) {
    EXPECT_EQ(one.frontier[i].template_key, many.frontier[i].template_key);
    EXPECT_EQ(one.frontier[i].sample_seed, many.frontier[i].sample_seed);
    EXPECT_DOUBLE_EQ(one.frontier[i].score, many.frontier[i].score);
    EXPECT_EQ(one.frontier[i].spec, many.frontier[i].spec);
  }
  EXPECT_EQ(one.total_runs, many.total_runs);
  // Frontier entries round-trip through the corpus format.
  std::string corpus;
  for (const auto& e : one.frontier) corpus += e.corpus_line() + "\n";
  const auto parsed = sim::parse_corpus(corpus);
  ASSERT_EQ(parsed.size(), one.frontier.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].template_key, one.frontier[i].template_key);
    EXPECT_EQ(parsed[i].seed, one.frontier[i].sample_seed);
  }
  // Frontier is score-sorted.
  for (std::size_t i = 1; i < one.frontier.size(); ++i) {
    EXPECT_GE(one.frontier[i - 1].score, one.frontier[i].score);
  }
}

}  // namespace
}  // namespace rt::experiments
