#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "core/patch_model.hpp"
#include "core/robotack.hpp"
#include "core/safety_hijacker.hpp"
#include "core/scenario_matcher.hpp"
#include "core/trajectory_hijacker.hpp"

namespace rt::core {
namespace {

perception::WorldTrack make_target(double x, double y, double vy,
                                   sim::ActorType cls) {
  perception::WorldTrack t;
  t.track_id = 1;
  t.cls = cls;
  t.rel_position = {x, y};
  t.rel_velocity = {0.0, vy};
  t.hits = 10;
  return t;
}

bool contains(const std::vector<AttackVector>& vs, AttackVector v) {
  return std::find(vs.begin(), vs.end(), v) != vs.end();
}

// --------------------------------------------------- Table I (exhaustive)

struct TableICase {
  double y;
  double vy;
  bool expect_move_out;
  bool expect_move_in;
  bool expect_disappear;
  const char* name;
};

class ScenarioMatcherTableTest : public ::testing::TestWithParam<TableICase> {
};

TEST_P(ScenarioMatcherTableTest, MatchesPaperTable) {
  const TableICase& c = GetParam();
  ScenarioMatcher sm;
  const auto target = make_target(30.0, c.y, c.vy, sim::ActorType::kVehicle);
  const auto vs = sm.admissible(target);
  EXPECT_EQ(contains(vs, AttackVector::kMoveOut), c.expect_move_out) << c.name;
  EXPECT_EQ(contains(vs, AttackVector::kMoveIn), c.expect_move_in) << c.name;
  EXPECT_EQ(contains(vs, AttackVector::kDisappear), c.expect_disappear)
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    TableI, ScenarioMatcherTableTest,
    ::testing::Values(
        // TO in EV-lane, keeping -> Move_Out / Disappear
        TableICase{0.0, 0.0, true, false, true, "in-lane keep"},
        TableICase{1.0, 0.1, true, false, true, "in-lane slow drift"},
        // TO in EV-lane, moving out -> Move_In
        TableICase{1.0, 1.0, false, true, false, "in-lane moving out"},
        TableICase{-1.0, -1.0, false, true, false, "in-lane moving out left"},
        // TO not in lane, keeping -> Move_In
        TableICase{-3.0, 0.0, false, true, false, "parked keep"},
        TableICase{3.7, 0.0, false, true, false, "adjacent lane keep"},
        // TO not in lane, moving in -> Move_Out / Disappear
        TableICase{-4.0, 1.0, true, false, true, "crossing toward lane"},
        TableICase{4.0, -1.0, true, false, true, "crossing from left"},
        // TO not in lane, moving out -> nothing
        TableICase{-4.0, -1.0, false, false, false, "walking away"},
        TableICase{4.0, 1.0, false, false, false, "walking away left"}));

TEST(ScenarioMatcher, RangeGating) {
  ScenarioMatcher sm;
  EXPECT_TRUE(
      sm.admissible(make_target(1.0, 0.0, 0.0, sim::ActorType::kVehicle))
          .empty());
  EXPECT_TRUE(
      sm.admissible(make_target(150.0, 0.0, 0.0, sim::ActorType::kVehicle))
          .empty());
}

TEST(ScenarioMatcher, ClassifyTrajectory) {
  ScenarioMatcher sm;
  EXPECT_EQ(sm.classify(make_target(30.0, -4.0, 1.0, sim::ActorType::kPedestrian)),
            LateralTrajectory::kMovingIn);
  EXPECT_EQ(sm.classify(make_target(30.0, -4.0, -1.0, sim::ActorType::kPedestrian)),
            LateralTrajectory::kMovingOut);
  EXPECT_EQ(sm.classify(make_target(30.0, -4.0, 0.1, sim::ActorType::kPedestrian)),
            LateralTrajectory::kKeep);
  EXPECT_EQ(sm.classify(make_target(30.0, 0.5, 0.8, sim::ActorType::kVehicle)),
            LateralTrajectory::kMovingOut);
}

// ------------------------------------------------------------ patch model

TEST(PatchModel, VacuouslyFeasibleWithoutPatch) {
  PatchModel patch(0.3);
  EXPECT_TRUE(patch.feasible({0.0, 0.0, 10.0, 10.0}));
  EXPECT_FALSE(patch.has_patch());
}

TEST(PatchModel, BoundsFrameToFrameJump) {
  PatchModel patch(0.3);
  const math::Bbox base{100.0, 100.0, 40.0, 40.0};
  patch.set_patch(base);
  EXPECT_TRUE(patch.feasible(base));
  // A jump of two widths breaks the overlap constraint.
  EXPECT_FALSE(patch.feasible(base.translated(80.0, 0.0)));
  const double max_dx = patch.max_shift(base, 1.0, 100.0);
  EXPECT_GT(max_dx, 5.0);
  EXPECT_LT(max_dx, 40.0);
  // The returned bound is actually feasible, slightly beyond is not.
  EXPECT_TRUE(patch.feasible(base.translated(max_dx - 0.1, 0.0)));
  EXPECT_FALSE(patch.feasible(base.translated(max_dx + 0.5, 0.0)));
}

// ----------------------------------------------------- trajectory hijacker

perception::CameraFrame frame_with_detection(const math::Bbox& box,
                                             sim::ActorType cls) {
  perception::CameraFrame f;
  perception::Detection d;
  d.bbox = box;
  d.cls = cls;
  f.detections.push_back(d);
  return f;
}

TEST(TrajectoryHijacker, DisappearRemovesDetection) {
  TrajectoryHijacker th(TrajectoryHijacker::Config{}, perception::CameraModel{},
                        perception::DetectorNoiseModel::paper_defaults());
  th.begin(AttackVector::kDisappear, 1.0, 0.0);
  auto frame = frame_with_detection({100.0, 500.0, 40.0, 40.0},
                                    sim::ActorType::kPedestrian);
  const auto res = th.apply(frame, 0, std::nullopt, 30.0);
  EXPECT_TRUE(res.perturbed);
  EXPECT_TRUE(frame.detections.empty());
}

TEST(TrajectoryHijacker, MoveOutShiftsWithinNoiseBound) {
  const perception::CameraModel cam;
  const auto noise = perception::DetectorNoiseModel::paper_defaults();
  TrajectoryHijacker th(TrajectoryHijacker::Config{}, cam, noise);
  th.begin(AttackVector::kMoveOut, 1.0, 2.4);

  const double range = 25.0;
  sim::GroundTruthObject obj;
  obj.type = sim::ActorType::kVehicle;
  obj.dims = sim::default_dimensions(obj.type);
  obj.rel_position = {range, 0.0};
  const auto truth_box = cam.project(obj);
  ASSERT_TRUE(truth_box.has_value());

  // Simulate the dragged ADS prediction following the faked boxes.
  math::Bbox ads_pred = *truth_box;
  const double bound =
      (std::abs(noise.vehicle.center_x.mu) + noise.vehicle.center_x.sigma) *
      truth_box->w;
  int frames_to_omega = 0;
  for (int f = 0; f < 40 && !th.in_hold_phase(); ++f) {
    auto frame = frame_with_detection(*truth_box, sim::ActorType::kVehicle);
    const auto res = th.apply(frame, 0, ads_pred, range);
    ASSERT_TRUE(res.perturbed);
    const math::Bbox& faked = frame.detections[0].bbox;
    // Property 1 (noise bound): innovation vs the dragged prediction stays
    // within |mu| + sigma of the characterized noise.
    EXPECT_LE(std::abs(faked.cx - ads_pred.cx), bound + 1e-6);
    // Property 2 (association): the faked box still associates.
    EXPECT_GE(math::iou(faked, ads_pred),
              th.config().association_iou_min - 1e-9);
    // The tracker follows the faked measurement (simplified: jumps to it).
    ads_pred = faked;
    ++frames_to_omega;
  }
  EXPECT_TRUE(th.in_hold_phase());
  EXPECT_EQ(th.k_prime(), frames_to_omega);
  EXPECT_NEAR(std::abs(th.accumulated_offset_m()), 2.4, 0.2);

  // Hold phase: the offset stays constant.
  auto frame = frame_with_detection(*truth_box, sim::ActorType::kVehicle);
  th.apply(frame, 0, ads_pred, range);
  const double held_offset =
      cam.lateral_px_to_m(frame.detections[0].bbox.cx - truth_box->cx, range);
  EXPECT_NEAR(held_offset, th.accumulated_offset_m(), 1e-6);
}

TEST(TrajectoryHijacker, BothClassesCompleteTheShiftPhase) {
  // Note: at equal range, the vehicle's larger bbox allows a larger
  // absolute pixel shift under the IoU association gate, so K' per class
  // here reflects OUR tracker's gate (see EXPERIMENTS.md for how this
  // interacts with the paper's Fig. 7 ordering).
  const perception::CameraModel cam;
  const auto noise = perception::DetectorNoiseModel::paper_defaults();
  const double range = 25.0;

  auto run = [&](sim::ActorType cls) {
    TrajectoryHijacker th(TrajectoryHijacker::Config{}, cam, noise);
    th.begin(AttackVector::kMoveOut, 1.0, 2.4);
    sim::GroundTruthObject obj;
    obj.type = cls;
    obj.dims = sim::default_dimensions(cls);
    obj.rel_position = {range, 0.0};
    const auto truth_box = cam.project(obj);
    math::Bbox ads_pred = *truth_box;
    for (int f = 0; f < 100 && !th.in_hold_phase(); ++f) {
      auto frame = frame_with_detection(*truth_box, cls);
      th.apply(frame, 0, ads_pred, range);
      ads_pred = frame.detections[0].bbox;
    }
    return th.k_prime();
  };
  const int k_ped = run(sim::ActorType::kPedestrian);
  const int k_veh = run(sim::ActorType::kVehicle);
  EXPECT_GT(k_ped, 0);
  EXPECT_GT(k_veh, 0);
  EXPECT_LT(k_ped, 40);
  EXPECT_LT(k_veh, 40);
}

TEST(TrajectoryHijacker, NaturalMissSkipsFrame) {
  TrajectoryHijacker th(TrajectoryHijacker::Config{}, perception::CameraModel{},
                        perception::DetectorNoiseModel::paper_defaults());
  th.begin(AttackVector::kMoveOut, 1.0, 2.0);
  perception::CameraFrame frame;
  const auto res = th.apply(frame, std::nullopt, std::nullopt, 30.0);
  EXPECT_FALSE(res.perturbed);
  EXPECT_EQ(th.k_prime(), 0);
}

// --------------------------------------------------------- safety hijacker

/// Trains an oracle on a synthetic monotone law delta_{t+k} = delta - 0.3k.
std::shared_ptr<SafetyOracle> synthetic_oracle() {
  auto oracle = std::make_shared<SafetyOracle>(77);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  stats::Rng rng(4);
  for (int i = 0; i < 900; ++i) {
    const double delta = rng.uniform(0.0, 40.0);
    const double k = rng.uniform(3.0, 70.0);
    xs.push_back({delta, rng.uniform(-10.0, 0.0), rng.uniform(-1.0, 1.0),
                  rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0), k});
    ys.push_back(delta - 0.3 * k);
  }
  nn::TrainConfig cfg;
  cfg.epochs = 120;
  cfg.lr = 2e-3;
  oracle->train(nn::Dataset::from_samples(xs, ys), cfg);
  return oracle;
}

// PR 8 batched oracle serving: predict_batch answers exactly what
// per-query predict answers, bit for bit, at every batch width — batching
// is a throughput lever, never a semantics change.
TEST(SafetyOracle, PredictBatchMatchesSinglePredictBitwise) {
  auto oracle = synthetic_oracle();
  stats::Rng rng(31);
  for (const std::size_t batch : {1u, 2u, 7u, 32u}) {
    std::vector<OracleQuery> queries(batch);
    for (auto& q : queries) {
      q = {rng.uniform(0.0, 40.0),
           {rng.uniform(-10.0, 0.0), rng.uniform(-1.0, 1.0)},
           {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)},
           rng.uniform(3.0, 70.0)};
    }
    std::vector<double> out(batch);
    oracle->predict_batch(queries, out);
    for (std::size_t i = 0; i < batch; ++i) {
      const double single = oracle->predict(queries[i].delta,
                                            queries[i].v_rel,
                                            queries[i].a_rel, queries[i].k);
      std::uint64_t bb = 0;
      std::uint64_t sb = 0;
      std::memcpy(&bb, &out[i], sizeof bb);
      std::memcpy(&sb, &single, sizeof sb);
      EXPECT_EQ(bb, sb) << "batch " << batch << " query " << i;
    }
  }
  // Size-mismatched output span is a caller bug and must throw.
  std::vector<OracleQuery> queries(3);
  std::vector<double> short_out(2);
  EXPECT_THROW(oracle->predict_batch(queries, short_out),
               std::invalid_argument);
}

// OracleBatchBuffer: push/flush serves predictions in push order and
// resets; capacity gates full().
TEST(SafetyOracle, BatchBufferFlushServesPushOrder) {
  auto oracle = synthetic_oracle();
  OracleBatchBuffer buffer(4);
  EXPECT_TRUE(buffer.empty());
  std::vector<OracleQuery> queries;
  for (int i = 0; i < 4; ++i) {
    queries.push_back({10.0 + i, {-5.0, 0.0}, {0.0, 0.0}, 20.0 + i});
    buffer.push(queries.back());
  }
  EXPECT_TRUE(buffer.full());
  const auto preds = buffer.flush(*oracle);
  ASSERT_EQ(preds.size(), 4u);
  EXPECT_TRUE(buffer.empty());
  for (std::size_t i = 0; i < 4; ++i) {
    const double single = oracle->predict(queries[i].delta,
                                          queries[i].v_rel,
                                          queries[i].a_rel, queries[i].k);
    EXPECT_EQ(preds[i], single) << "query " << i;
  }
}

TEST(SafetyHijacker, BinarySearchFindsMinimalK) {
  SafetyHijacker sh(SafetyHijacker::Config{},
                    perception::DetectorNoiseModel::paper_defaults());
  sh.set_oracle(AttackVector::kMoveOut, synthetic_oracle());
  ASSERT_TRUE(sh.has_oracle(AttackVector::kMoveOut));

  // delta = 20, law: delta - 0.3k <= 6  =>  k >= 46.7.
  const ShDecision d = sh.decide(AttackVector::kMoveOut,
                                 sim::ActorType::kVehicle, 20.0,
                                 {-5.0, 0.0}, {0.0, 0.0});
  ASSERT_TRUE(d.attack);
  EXPECT_NEAR(d.k, 47, 8);  // NN approximation tolerance
  EXPECT_LE(d.predicted_delta, sh.config().gamma_launch + 0.5);
}

TEST(SafetyHijacker, DormantWhenUnreachable) {
  SafetyHijacker sh(SafetyHijacker::Config{},
                    perception::DetectorNoiseModel::paper_defaults());
  sh.set_oracle(AttackVector::kMoveOut, synthetic_oracle());
  // delta = 40: even k_max (70) only reaches 40 - 21 = 19 > gamma.
  const ShDecision d = sh.decide(AttackVector::kMoveOut,
                                 sim::ActorType::kVehicle, 40.0,
                                 {-5.0, 0.0}, {0.0, 0.0});
  EXPECT_FALSE(d.attack);
}

TEST(SafetyHijacker, NoOracleNoAttack) {
  SafetyHijacker sh(SafetyHijacker::Config{},
                    perception::DetectorNoiseModel::paper_defaults());
  EXPECT_FALSE(sh.has_oracle(AttackVector::kMoveOut));
  EXPECT_FALSE(sh.decide(AttackVector::kMoveOut, sim::ActorType::kVehicle,
                         5.0, {}, {})
                   .attack);
}

TEST(SafetyHijacker, KmaxFromStreakTail) {
  SafetyHijacker sh(SafetyHijacker::Config{},
                    perception::DetectorNoiseModel::paper_defaults());
  // Paper: empirical p99 = 31 (ped) / 59.4 (veh) frames.
  EXPECT_EQ(sh.k_max(AttackVector::kDisappear, sim::ActorType::kPedestrian),
            31);
  EXPECT_EQ(sh.k_max(AttackVector::kDisappear, sim::ActorType::kVehicle), 59);
  EXPECT_EQ(sh.k_max(AttackVector::kMoveOut, sim::ActorType::kVehicle),
            sh.config().k_max_move);
}

// ----------------------------------------------------------- orchestrator

TEST(Robotack, DormantWithoutOracle) {
  RobotackConfig cfg;
  cfg.vector = AttackVector::kMoveOut;
  cfg.timing = TimingPolicy::kSafetyHijacker;
  Robotack bot(cfg, perception::CameraModel{},
               perception::DetectorNoiseModel::paper_defaults(),
               perception::MotConfig{}, 1);
  perception::CameraFrame frame;
  frame.time = 0.0;
  const auto out = bot.process(frame, 12.5);
  EXPECT_FALSE(bot.attack_active());
  EXPECT_FALSE(bot.log().triggered);
  EXPECT_TRUE(out.detections.empty());
}

TEST(Robotack, ScriptedTriggerPerturbsFrames) {
  const perception::CameraModel cam;
  RobotackConfig cfg;
  cfg.vector = AttackVector::kDisappear;
  cfg.timing = TimingPolicy::kAtDeltaThreshold;
  cfg.delta_trigger = 100.0;  // fire as soon as SM matches
  cfg.fixed_k = 5;
  Robotack bot(cfg, cam, perception::DetectorNoiseModel::paper_defaults(),
               perception::MotConfig{}, 2);

  sim::GroundTruthObject obj;
  obj.id = 1;
  obj.type = sim::ActorType::kVehicle;
  obj.dims = sim::default_dimensions(obj.type);
  obj.rel_position = {30.0, 0.0};
  const auto box = cam.project(obj);
  ASSERT_TRUE(box.has_value());

  int suppressed = 0;
  for (int f = 0; f < 30; ++f) {
    perception::CameraFrame frame;
    frame.time = f / 15.0;
    perception::Detection d;
    d.bbox = *box;
    d.cls = obj.type;
    d.truth_id = obj.id;
    frame.detections.push_back(d);
    const auto out = bot.process(frame, 12.5);
    if (out.detections.empty()) ++suppressed;
  }
  EXPECT_TRUE(bot.log().triggered);
  EXPECT_EQ(bot.log().planned_k, 5);
  EXPECT_EQ(suppressed, 5);
  EXPECT_EQ(bot.log().frames_perturbed, 5);
  EXPECT_FALSE(bot.attack_active());  // one-shot
}

TEST(Robotack, MaxTriggersRespected) {
  RobotackConfig cfg;
  cfg.vector = AttackVector::kDisappear;
  cfg.timing = TimingPolicy::kAtDeltaThreshold;
  cfg.delta_trigger = 100.0;
  cfg.fixed_k = 2;
  cfg.max_triggers = 1;
  const perception::CameraModel cam;
  Robotack bot(cfg, cam, perception::DetectorNoiseModel::paper_defaults(),
               perception::MotConfig{}, 3);
  sim::GroundTruthObject obj;
  obj.id = 1;
  obj.type = sim::ActorType::kVehicle;
  obj.dims = sim::default_dimensions(obj.type);
  obj.rel_position = {30.0, 0.0};
  const auto box = cam.project(obj);
  for (int f = 0; f < 40; ++f) {
    perception::CameraFrame frame;
    frame.time = f / 15.0;
    perception::Detection d;
    d.bbox = *box;
    d.cls = obj.type;
    d.truth_id = obj.id;
    frame.detections.push_back(d);
    (void)bot.process(frame, 12.5);
  }
  EXPECT_EQ(bot.log().triggers, 1);
}

}  // namespace
}  // namespace rt::core
