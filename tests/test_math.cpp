#include <gtest/gtest.h>

#include <cmath>

#include "math/bbox.hpp"
#include "math/matrix.hpp"
#include "math/vec2.hpp"
#include "stats/rng.hpp"

namespace rt::math {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(-a, (Vec2{-1.0, -2.0}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).squared_norm(), 25.0);
  EXPECT_DOUBLE_EQ(a.distance_to(b), std::hypot(2.0, 3.0));
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);

  const Matrix init{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(init(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(init(1, 0), 3.0);
  EXPECT_THROW((Matrix{{1.0}, {2.0, 3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
  const double entries[] = {2.0, 5.0};
  const Matrix d = Matrix::diagonal(entries);
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, Multiply) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  EXPECT_THROW(a * Matrix(3, 3), std::invalid_argument);
}

TEST(Matrix, AddSubtractScale) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ((a + b)(1, 1), 5.0);
  EXPECT_DOUBLE_EQ((a - b)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ((a * 2.0)(1, 0), 6.0);
  EXPECT_THROW(a + Matrix(3, 2), std::invalid_argument);
}

TEST(Matrix, Transpose) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, InverseRoundTrip) {
  stats::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(trial % 6);
    Matrix a(n, n);
    for (auto& v : a.data()) v = rng.uniform(-2.0, 2.0);
    // Diagonal dominance guarantees invertibility.
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 4.0;
    const Matrix inv = a.inverse();
    const Matrix prod = a * inv;
    EXPECT_LT(prod.max_abs_diff(Matrix::identity(n)), 1e-9);
  }
}

TEST(Matrix, InverseSingularThrows) {
  const Matrix z(3, 3, 0.0);
  EXPECT_THROW(z.inverse(), std::domain_error);
  EXPECT_THROW(Matrix(2, 3).inverse(), std::invalid_argument);
}

TEST(Matrix, Cholesky) {
  // A = L L^T for a hand-built SPD matrix.
  const Matrix l_true{{2.0, 0.0}, {1.0, 3.0}};
  const Matrix a = l_true * l_true.transposed();
  const Matrix l = a.cholesky();
  EXPECT_LT(l.max_abs_diff(l_true), 1e-12);
  EXPECT_THROW(Matrix(2, 2, 0.0).cholesky(), std::domain_error);
}

TEST(Bbox, CornersAndArea) {
  const Bbox b = Bbox::from_corners(10.0, 20.0, 30.0, 60.0);
  EXPECT_DOUBLE_EQ(b.cx, 20.0);
  EXPECT_DOUBLE_EQ(b.cy, 40.0);
  EXPECT_DOUBLE_EQ(b.w, 20.0);
  EXPECT_DOUBLE_EQ(b.h, 40.0);
  EXPECT_DOUBLE_EQ(b.area(), 800.0);
  EXPECT_DOUBLE_EQ(b.left(), 10.0);
  EXPECT_DOUBLE_EQ(b.bottom(), 60.0);
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(Bbox{}.valid());
}

TEST(Bbox, IouIdentityAndDisjoint) {
  const Bbox a{0.0, 0.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(iou(a, a), 1.0);
  const Bbox far{100.0, 0.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(iou(a, far), 0.0);
}

TEST(Bbox, IouKnownValue) {
  // Two unit-area boxes overlapping by half.
  const Bbox a{0.0, 0.0, 2.0, 2.0};
  const Bbox b{1.0, 0.0, 2.0, 2.0};
  // intersection = 1x2 = 2, union = 4 + 4 - 2 = 6.
  EXPECT_NEAR(iou(a, b), 2.0 / 6.0, 1e-12);
}

/// Property sweep: IoU of a translated copy is symmetric, bounded, and
/// monotonically non-increasing with |shift|.
class IouShiftTest : public ::testing::TestWithParam<double> {};

TEST_P(IouShiftTest, SymmetricBoundedMonotone) {
  const double w = GetParam();
  const Bbox base{50.0, 50.0, w, w * 1.5};
  double prev = 1.0;
  for (double shift = 0.0; shift <= 2.0 * w; shift += w / 8.0) {
    const Bbox moved = base.translated(shift, 0.0);
    const double o = iou(base, moved);
    EXPECT_GE(o, 0.0);
    EXPECT_LE(o, 1.0);
    EXPECT_LE(o, prev + 1e-12);  // monotone non-increasing
    EXPECT_NEAR(o, iou(moved, base), 1e-12);  // symmetric
    prev = o;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, IouShiftTest,
                         ::testing::Values(4.0, 16.0, 64.0, 200.0));

TEST(Bbox, PureTranslationIouFormula) {
  // For equal boxes translated dx < w: IoU = (w-dx)h / ((2w - (w-dx))h)
  const double w = 20.0;
  const Bbox a{0.0, 0.0, w, 10.0};
  for (double dx = 0.0; dx < w; dx += 2.5) {
    const double expected = (w - dx) / (w + dx);
    EXPECT_NEAR(iou(a, a.translated(dx, 0.0)), expected, 1e-12);
  }
}

}  // namespace
}  // namespace rt::math
