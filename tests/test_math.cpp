#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "math/bbox.hpp"
#include "math/matrix.hpp"
#include "math/vec2.hpp"
#include "stats/rng.hpp"

namespace rt::math {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(-a, (Vec2{-1.0, -2.0}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).squared_norm(), 25.0);
  EXPECT_DOUBLE_EQ(a.distance_to(b), std::hypot(2.0, 3.0));
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);

  const Matrix init{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(init(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(init(1, 0), 3.0);
  EXPECT_THROW((Matrix{{1.0}, {2.0, 3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
  const double entries[] = {2.0, 5.0};
  const Matrix d = Matrix::diagonal(entries);
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, Multiply) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  EXPECT_THROW(a * Matrix(3, 3), std::invalid_argument);
}

TEST(Matrix, AddSubtractScale) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ((a + b)(1, 1), 5.0);
  EXPECT_DOUBLE_EQ((a - b)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ((a * 2.0)(1, 0), 6.0);
  EXPECT_THROW(a + Matrix(3, 2), std::invalid_argument);
}

TEST(Matrix, Transpose) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, InverseRoundTrip) {
  stats::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(trial % 6);
    Matrix a(n, n);
    for (auto& v : a.data()) v = rng.uniform(-2.0, 2.0);
    // Diagonal dominance guarantees invertibility.
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 4.0;
    const Matrix inv = a.inverse();
    const Matrix prod = a * inv;
    EXPECT_LT(prod.max_abs_diff(Matrix::identity(n)), 1e-9);
  }
}

TEST(Matrix, InverseSingularThrows) {
  const Matrix z(3, 3, 0.0);
  EXPECT_THROW(z.inverse(), std::domain_error);
  EXPECT_THROW(Matrix(2, 3).inverse(), std::invalid_argument);
}

TEST(Matrix, Cholesky) {
  // A = L L^T for a hand-built SPD matrix.
  const Matrix l_true{{2.0, 0.0}, {1.0, 3.0}};
  const Matrix a = l_true * l_true.transposed();
  const Matrix l = a.cholesky();
  EXPECT_LT(l.max_abs_diff(l_true), 1e-12);
  EXPECT_THROW(Matrix(2, 2, 0.0).cholesky(), std::domain_error);
}

TEST(Bbox, CornersAndArea) {
  const Bbox b = Bbox::from_corners(10.0, 20.0, 30.0, 60.0);
  EXPECT_DOUBLE_EQ(b.cx, 20.0);
  EXPECT_DOUBLE_EQ(b.cy, 40.0);
  EXPECT_DOUBLE_EQ(b.w, 20.0);
  EXPECT_DOUBLE_EQ(b.h, 40.0);
  EXPECT_DOUBLE_EQ(b.area(), 800.0);
  EXPECT_DOUBLE_EQ(b.left(), 10.0);
  EXPECT_DOUBLE_EQ(b.bottom(), 60.0);
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(Bbox{}.valid());
}

TEST(Bbox, IouIdentityAndDisjoint) {
  const Bbox a{0.0, 0.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(iou(a, a), 1.0);
  const Bbox far{100.0, 0.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(iou(a, far), 0.0);
}

TEST(Bbox, IouKnownValue) {
  // Two unit-area boxes overlapping by half.
  const Bbox a{0.0, 0.0, 2.0, 2.0};
  const Bbox b{1.0, 0.0, 2.0, 2.0};
  // intersection = 1x2 = 2, union = 4 + 4 - 2 = 6.
  EXPECT_NEAR(iou(a, b), 2.0 / 6.0, 1e-12);
}

/// Property sweep: IoU of a translated copy is symmetric, bounded, and
/// monotonically non-increasing with |shift|.
class IouShiftTest : public ::testing::TestWithParam<double> {};

TEST_P(IouShiftTest, SymmetricBoundedMonotone) {
  const double w = GetParam();
  const Bbox base{50.0, 50.0, w, w * 1.5};
  double prev = 1.0;
  for (double shift = 0.0; shift <= 2.0 * w; shift += w / 8.0) {
    const Bbox moved = base.translated(shift, 0.0);
    const double o = iou(base, moved);
    EXPECT_GE(o, 0.0);
    EXPECT_LE(o, 1.0);
    EXPECT_LE(o, prev + 1e-12);  // monotone non-increasing
    EXPECT_NEAR(o, iou(moved, base), 1e-12);  // symmetric
    prev = o;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, IouShiftTest,
                         ::testing::Values(4.0, 16.0, 64.0, 200.0));

TEST(Bbox, PureTranslationIouFormula) {
  // For equal boxes translated dx < w: IoU = (w-dx)h / ((2w - (w-dx))h)
  const double w = 20.0;
  const Bbox a{0.0, 0.0, w, 10.0};
  for (double dx = 0.0; dx < w; dx += 2.5) {
    const double expected = (w - dx) / (w + dx);
    EXPECT_NEAR(iou(a, a.translated(dx, 0.0)), expected, 1e-12);
  }
}


// ------------------------------------- destination-passing kernel layer

// The `*_into` kernels carry a bit-identity contract against the
// allocating operators (same i-k-j accumulation order, same
// skip-exact-zero shortcut); these sweeps enforce it bitwise — including
// sign-of-zero — across shapes, sparsity, and negative zeros.

bool bitwise_equal(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto ad = a.data();
  const auto bd = b.data();
  return std::memcmp(ad.data(), bd.data(), ad.size() * sizeof(double)) == 0;
}

/// Reference implementations: the historical allocating loops, kept here
/// verbatim so the kernel sweep is non-circular (the operators now delegate
/// to the kernels, so comparing operator vs kernel alone would be vacuous).
Matrix reference_multiply(const Matrix& a, const Matrix& b) {
  Matrix r(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double v = a(i, k);
      if (v == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        r(i, j) += v * b(k, j);
      }
    }
  }
  return r;
}

Matrix reference_inverse(const Matrix& m) {
  const std::size_t n = m.rows();
  Matrix a = m;
  Matrix inv = Matrix::identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    }
    if (std::abs(a(pivot, col)) < 1e-12) {
      throw std::domain_error("singular");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a(col, j), a(pivot, j));
        std::swap(inv(col, j), inv(pivot, j));
      }
    }
    const double d = a(col, col);
    for (std::size_t j = 0; j < n; ++j) {
      a(col, j) /= d;
      inv(col, j) /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a(r, col);
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        a(r, j) -= f * a(col, j);
        inv(r, j) -= f * inv(col, j);
      }
    }
  }
  return inv;
}

/// Random matrix with exact zeros and negatives mixed in (the zero-skip
/// path and -0.0 handling must match, not just "close" values).
Matrix random_matrix(std::size_t r, std::size_t c, stats::Rng& rng) {
  Matrix m(r, c);
  for (double& v : m.data()) {
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.15) {
      v = 0.0;
    } else if (roll < 0.2) {
      v = -0.0;
    } else {
      v = rng.uniform(-3.0, 3.0);
    }
  }
  return m;
}

TEST(MatrixKernels, MultiplyIntoMatchesOperatorBitwise) {
  stats::Rng rng(101);
  const std::size_t sizes[] = {1, 2, 3, 4, 5, 6, 7, 8, 13, 16, 33};
  for (const std::size_t r : sizes) {
    for (const std::size_t k : sizes) {
      for (const std::size_t c : sizes) {
        const Matrix a = random_matrix(r, k, rng);
        const Matrix b = random_matrix(k, c, rng);
        Matrix out;
        multiply_into(a, b, out);
        const Matrix expected = reference_multiply(a, b);
        EXPECT_TRUE(bitwise_equal(out, expected))
            << r << "x" << k << " * " << k << "x" << c;
        EXPECT_TRUE(bitwise_equal(a * b, expected));
      }
    }
  }
}

TEST(MatrixKernels, TransposedVariantsMatchOperatorsBitwise) {
  stats::Rng rng(102);
  const std::size_t sizes[] = {1, 2, 3, 4, 6, 8, 11, 16};
  for (const std::size_t r : sizes) {
    for (const std::size_t k : sizes) {
      for (const std::size_t c : sizes) {
        const Matrix a = random_matrix(r, k, rng);
        const Matrix bt = random_matrix(c, k, rng);  // b^T operand
        Matrix out;
        multiply_transposed_into(a, bt, out);
        EXPECT_TRUE(
            bitwise_equal(out, reference_multiply(a, bt.transposed())))
            << "a*b^T " << r << "x" << k << ", " << c << "x" << k;

        const Matrix at = random_matrix(k, r, rng);  // a^T operand
        const Matrix b = random_matrix(k, c, rng);
        transposed_multiply_into(at, b, out);
        EXPECT_TRUE(
            bitwise_equal(out, reference_multiply(at.transposed(), b)))
            << "a^T*b " << k << "x" << r << ", " << k << "x" << c;
      }
    }
  }
}

TEST(MatrixKernels, AddSubtractAffineMatchBitwise) {
  stats::Rng rng(103);
  for (const std::size_t r : {1u, 3u, 5u, 8u, 17u}) {
    for (const std::size_t c : {1u, 2u, 7u, 16u}) {
      const Matrix a = random_matrix(r, c, rng);
      const Matrix b = random_matrix(r, c, rng);
      Matrix out;
      add_into(a, b, out);
      EXPECT_TRUE(bitwise_equal(out, a + b));
      subtract_into(a, b, out);
      EXPECT_TRUE(bitwise_equal(out, a - b));

      // affine_into mirrors the dense-layer forward: w*x then a per-row
      // bias add.
      const Matrix w = random_matrix(r, 5, rng);
      const Matrix x = random_matrix(5, c, rng);
      const Matrix bias = random_matrix(r, 1, rng);
      affine_into(w, x, bias, out);
      Matrix expected = reference_multiply(w, x);
      for (std::size_t i = 0; i < expected.rows(); ++i) {
        for (std::size_t j = 0; j < expected.cols(); ++j) {
          expected(i, j) += bias(i, 0);
        }
      }
      EXPECT_TRUE(bitwise_equal(out, expected));
    }
  }
}

TEST(MatrixKernels, InvertIntoMatchesInverseBitwise) {
  stats::Rng rng(104);
  for (const std::size_t n : {1u, 2u, 3u, 4u, 6u, 8u, 12u}) {
    // Diagonally-dominant => well-conditioned and invertible.
    Matrix a = random_matrix(n, n, rng);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 10.0;
    Matrix scratch;
    Matrix out;
    invert_into(a, scratch, out);
    const Matrix expected = reference_inverse(a);
    EXPECT_TRUE(bitwise_equal(out, expected));
    EXPECT_TRUE(bitwise_equal(a.inverse(), expected));
  }
  Matrix singular(3, 3, 0.0);
  Matrix scratch;
  Matrix out;
  EXPECT_THROW(invert_into(singular, scratch, out), std::domain_error);
}

TEST(MatrixKernels, ShapeAndAliasViolationsThrow) {
  Matrix a(2, 3, 1.0);
  Matrix b(4, 2, 1.0);
  Matrix out;
  EXPECT_THROW(multiply_into(a, b, out), std::invalid_argument);
  EXPECT_THROW(multiply_transposed_into(a, Matrix(2, 2, 1.0), out),
               std::invalid_argument);
  EXPECT_THROW(transposed_multiply_into(a, Matrix(3, 2, 1.0), out),
               std::invalid_argument);
  EXPECT_THROW(add_into(a, Matrix(3, 2, 1.0), out), std::invalid_argument);
  EXPECT_THROW(subtract_into(a, Matrix(3, 3, 1.0), out),
               std::invalid_argument);

  Matrix sq(3, 3, 1.0);
  EXPECT_THROW(multiply_into(sq, sq, sq), std::invalid_argument);
  Matrix c(3, 3, 2.0);
  EXPECT_THROW(multiply_into(sq, c, c), std::invalid_argument);
  Matrix scratch;
  EXPECT_THROW(invert_into(sq, scratch, sq), std::invalid_argument);
  EXPECT_THROW(invert_into(sq, sq, scratch), std::invalid_argument);
}

TEST(MatrixKernels, RowRangeKernelsPartitionBitwise) {
  // The minibatch trainer's parallel slots: covering [0, rows) with ANY
  // disjoint consecutive ranges must reproduce the full kernels bit for
  // bit — this is what makes TrainConfig::threads both thread-count-
  // invariant and golden-preserving.
  stats::Rng rng(105);
  const std::size_t sizes[] = {1, 2, 3, 5, 8, 13, 16, 33};
  for (const std::size_t r : sizes) {
    for (const std::size_t k : sizes) {
      for (const std::size_t c : sizes) {
        // Random partition of [0, rows) into 1..4 consecutive ranges.
        const auto partition = [&rng](std::size_t rows) {
          std::vector<std::size_t> cuts{0, rows};
          const int extra = static_cast<int>(rng.uniform_int(0, 3));
          for (int i = 0; i < extra; ++i) {
            cuts.push_back(static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(rows))));
          }
          std::sort(cuts.begin(), cuts.end());
          return cuts;
        };

        const Matrix w = random_matrix(r, k, rng);
        const Matrix x = random_matrix(k, c, rng);
        const Matrix bias = random_matrix(r, 1, rng);
        Matrix full;
        affine_into(w, x, bias, full);
        Matrix sliced(r, c, 0.123);  // poison: every row must be written
        for (auto cuts = partition(r); cuts.size() >= 2;) {
          for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
            affine_rows_into(w, x, bias, sliced, cuts[i], cuts[i + 1]);
          }
          break;
        }
        EXPECT_TRUE(bitwise_equal(sliced, full))
            << "affine " << r << "x" << k << "x" << c;

        const Matrix a = random_matrix(r, k, rng);
        const Matrix bt = random_matrix(c, k, rng);
        Matrix full_t;
        multiply_transposed_into(a, bt, full_t);
        Matrix sliced_t(r, c, 0.123);
        for (auto cuts = partition(r); cuts.size() >= 2;) {
          for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
            multiply_transposed_rows_into(a, bt, sliced_t, cuts[i],
                                          cuts[i + 1]);
          }
          break;
        }
        EXPECT_TRUE(bitwise_equal(sliced_t, full_t))
            << "a*b^T rows " << r << "x" << k << "x" << c;

        const Matrix at = random_matrix(k, r, rng);
        const Matrix b = random_matrix(k, c, rng);
        Matrix full_at;
        transposed_multiply_into(at, b, full_at);
        Matrix sliced_at(r, c, 0.123);
        for (auto cuts = partition(r); cuts.size() >= 2;) {
          for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
            transposed_multiply_rows_into(at, b, sliced_at, cuts[i],
                                          cuts[i + 1]);
          }
          break;
        }
        EXPECT_TRUE(bitwise_equal(sliced_at, full_at))
            << "a^T*b rows " << r << "x" << k << "x" << c;
      }
    }
  }
}

TEST(MatrixKernels, RowRangeKernelsValidate) {
  Matrix w(3, 2, 1.0);
  Matrix x(2, 4, 1.0);
  Matrix bias(3, 1, 1.0);
  Matrix out;  // not pre-sized
  EXPECT_THROW(affine_rows_into(w, x, bias, out, 0, 3),
               std::invalid_argument);
  out.resize(3, 4);
  EXPECT_THROW(affine_rows_into(w, x, bias, out, 2, 1),
               std::invalid_argument);
  EXPECT_THROW(affine_rows_into(w, x, bias, out, 0, 4),
               std::invalid_argument);
  EXPECT_NO_THROW(affine_rows_into(w, x, bias, out, 0, 3));
  EXPECT_THROW(multiply_transposed_rows_into(w, Matrix(4, 3, 1.0), out, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(transposed_multiply_rows_into(w, Matrix(2, 4, 1.0), out, 0, 1),
               std::invalid_argument);
}

TEST(MatrixKernels, ResizeReusesStorageWithoutShrinking) {
  Matrix m(8, 8, 1.0);
  const double* before = m.data().data();
  m.resize(4, 4);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 4u);
  // Shrinking then growing back within the original footprint must not
  // move the storage (the workspace reuse the hot paths depend on).
  m.resize(8, 8);
  EXPECT_EQ(m.data().data(), before);
  m.resize(2, 3);
  EXPECT_EQ(m.data().data(), before);
}

}  // namespace
}  // namespace rt::math
