#include <gtest/gtest.h>

#include <cstring>

#include <cmath>
#include <set>
#include <sstream>

#include "nn/adam.hpp"
#include "nn/dataset.hpp"
#include "nn/layer.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"

namespace rt::nn {
namespace {

TEST(Dense, ForwardShapeAndBias) {
  Dense d(3, 2);
  d.weights() = math::Matrix{{1.0, 0.0, 0.0}, {0.0, 1.0, 1.0}};
  d.bias() = math::Matrix{{0.5}, {-0.5}};
  math::Matrix x(3, 2);
  x(0, 0) = 1.0;
  x(1, 1) = 2.0;
  x(2, 1) = 3.0;
  const math::Matrix y = d.forward(x, false);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 2u);
  EXPECT_DOUBLE_EQ(y(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(y(1, 1), 4.5);
}

TEST(Relu, ForwardBackward) {
  Relu relu;
  math::Matrix x{{-1.0, 2.0}, {3.0, -4.0}};
  const math::Matrix y = relu.forward(x, true);
  EXPECT_DOUBLE_EQ(y(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 1), 2.0);
  math::Matrix g(2, 2, 1.0);
  const math::Matrix gx = relu.backward(g);
  EXPECT_DOUBLE_EQ(gx(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(gx(1, 0), 1.0);
}

TEST(Dropout, InferencePassThroughTrainingScales) {
  Dropout drop(0.5, stats::Rng(3));
  math::Matrix x(1, 1000, 1.0);
  const math::Matrix inference = drop.forward(x, false);
  EXPECT_DOUBLE_EQ(inference(0, 0), 1.0);
  const math::Matrix train = drop.forward(x, true);
  double sum = 0.0;
  for (double v : train.data()) sum += v;
  // Inverted dropout preserves the expectation.
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.15);
}

/// Numerical gradient check of a small MLP against finite differences.
TEST(Mlp, GradientCheck) {
  stats::Rng rng(5);
  Mlp net;
  net.add(std::make_unique<Dense>(3, 5, rng));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<Dense>(5, 1, rng));

  math::Matrix x(3, 4);
  for (auto& v : x.data()) v = rng.uniform(-1.0, 1.0);
  math::Matrix y(1, 4);
  for (auto& v : y.data()) v = rng.uniform(-1.0, 1.0);

  // Analytic gradients. backward() requires a training-mode forward —
  // inference forwards cache nothing (Layer contract); with no dropout in
  // this net the outputs are identical either way.
  const math::Matrix pred = net.forward(x, true);
  net.backward(MseLoss::gradient(pred, y));
  const auto params = net.parameters();
  const auto grads = net.gradients();

  const double eps = 1e-6;
  for (std::size_t p = 0; p < params.size(); ++p) {
    auto data = params[p]->data();
    for (std::size_t i = 0; i < std::min<std::size_t>(data.size(), 8); ++i) {
      const double orig = data[i];
      data[i] = orig + eps;
      const double lp = MseLoss::value(net.forward(x, false), y);
      data[i] = orig - eps;
      const double lm = MseLoss::value(net.forward(x, false), y);
      data[i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(grads[p]->data()[i], numeric, 1e-4)
          << "param " << p << " index " << i;
    }
  }
}

TEST(Mlp, SafetyHijackerArchitecture) {
  stats::Rng rng(1);
  Mlp net = make_safety_hijacker_net(rng);
  // 6->100->100->50->1 with ReLU+Dropout between dense layers.
  EXPECT_EQ(net.layers().size(), 10u);
  const std::size_t expected_params = (6 * 100 + 100) + (100 * 100 + 100) +
                                      (100 * 50 + 50) + (50 * 1 + 1);
  EXPECT_EQ(net.parameter_count(), expected_params);
  math::Matrix x(6, 3);
  EXPECT_EQ(net.predict(x).rows(), 1u);
  EXPECT_EQ(net.predict(x).cols(), 3u);
}

TEST(Adam, MinimizesQuadratic) {
  // Minimize f(w) = ||w - target||^2 directly through Adam.
  math::Matrix w(4, 1, 0.0);
  math::Matrix target{{1.0}, {-2.0}, {0.5}, {3.0}};
  Adam adam({0.05, 0.9, 0.999, 1e-8});
  for (int i = 0; i < 500; ++i) {
    math::Matrix grad = (w - target) * 2.0;
    adam.step({&w}, {&grad});
  }
  EXPECT_LT(w.max_abs_diff(target), 0.05);
  EXPECT_EQ(adam.steps_taken(), 500);
}

TEST(MseLoss, ValueGradMae) {
  math::Matrix pred{{1.0, 2.0}};
  math::Matrix target{{0.0, 4.0}};
  EXPECT_DOUBLE_EQ(MseLoss::value(pred, target), (1.0 + 4.0) / 2.0);
  const math::Matrix g = MseLoss::gradient(pred, target);
  EXPECT_DOUBLE_EQ(g(0, 0), 1.0);   // 2*(1-0)/2
  EXPECT_DOUBLE_EQ(g(0, 1), -2.0);  // 2*(2-4)/2
  EXPECT_DOUBLE_EQ(MseLoss::mae(pred, target), 1.5);
}

TEST(Dataset, AddSubsetSplit) {
  Dataset d;
  for (int i = 0; i < 10; ++i) {
    d.add({static_cast<double>(i), 1.0}, i * 2.0);
  }
  EXPECT_EQ(d.size(), 10u);
  const Dataset sub = d.subset({0, 5});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub.y(0, 1), 10.0);

  stats::Rng rng(9);
  const auto [train, val] = d.split(0.6, rng);
  EXPECT_EQ(train.size(), 6u);
  EXPECT_EQ(val.size(), 4u);
  EXPECT_THROW(d.add({1.0}, 0.0), std::invalid_argument);
}

TEST(Dataset, FromSamples) {
  const Dataset d = Dataset::from_samples({{1.0, 2.0}, {3.0, 4.0}}, {5.0, 6.0});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.x(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(d.y(0, 0), 5.0);
  EXPECT_THROW(Dataset::from_samples({{1.0}}, {1.0, 2.0}),
               std::invalid_argument);
}

Dataset counting_dataset(int n) {
  Dataset d;
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < n; ++i) {
    xs.push_back({static_cast<double>(i), 1.0});
    ys.push_back(static_cast<double>(i));
  }
  return Dataset::from_samples(xs, ys);
}

TEST(Dataset, SplitSeededDeterministicAndDisjoint) {
  const Dataset d = counting_dataset(20);
  const auto [a1, b1] = d.split_seeded(0.6, 42);
  const auto [a2, b2] = d.split_seeded(0.6, 42);
  EXPECT_EQ(a1.size(), 12u);
  EXPECT_EQ(b1.size(), 8u);
  // Pure function of (fraction, seed, size): identical on every call.
  EXPECT_EQ(a1.content_hash(), a2.content_hash());
  EXPECT_EQ(b1.content_hash(), b2.content_hash());

  // Disjoint and exhaustive: each target 0..19 appears exactly once across
  // the two halves.
  std::set<int> seen;
  for (std::size_t j = 0; j < a1.size(); ++j) {
    seen.insert(static_cast<int>(a1.y(0, j)));
  }
  for (std::size_t j = 0; j < b1.size(); ++j) {
    seen.insert(static_cast<int>(b1.y(0, j)));
  }
  EXPECT_EQ(seen.size(), 20u);

  // A different seed reshuffles (sizes stay fixed).
  const auto [a3, b3] = d.split_seeded(0.6, 43);
  EXPECT_EQ(a3.size(), 12u);
  EXPECT_NE(a1.content_hash(), a3.content_hash());
}

TEST(Dataset, SplitSeededRatioEdgeCases) {
  const Dataset d = counting_dataset(5);
  {
    const auto [train, val] = d.split_seeded(0.0, 7);
    EXPECT_EQ(train.size(), 0u);
    EXPECT_EQ(val.size(), 5u);
  }
  {
    const auto [train, val] = d.split_seeded(1.0, 7);
    EXPECT_EQ(train.size(), 5u);
    EXPECT_EQ(val.size(), 0u);
  }
  {
    // Out-of-range fractions clamp instead of slicing past the ends.
    const auto [train, val] = d.split_seeded(-0.5, 7);
    EXPECT_EQ(train.size(), 0u);
    EXPECT_EQ(val.size(), 5u);
  }
  {
    const auto [train, val] = d.split_seeded(1.5, 7);
    EXPECT_EQ(train.size(), 5u);
    EXPECT_EQ(val.size(), 0u);
  }
  {
    const Dataset empty;
    const auto [train, val] = empty.split_seeded(0.6, 7);
    EXPECT_EQ(train.size(), 0u);
    EXPECT_EQ(val.size(), 0u);
  }
}

TEST(Dataset, ConcatPreservesOrderSkipsEmptyValidates) {
  const Dataset a = Dataset::from_samples({{1.0, 2.0}}, {10.0});
  const Dataset b = Dataset::from_samples({{3.0, 4.0}, {5.0, 6.0}},
                                          {20.0, 30.0});
  const Dataset joined = Dataset::concat({a, Dataset{}, b});
  ASSERT_EQ(joined.size(), 3u);
  EXPECT_DOUBLE_EQ(joined.y(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(joined.y(0, 1), 20.0);
  EXPECT_DOUBLE_EQ(joined.y(0, 2), 30.0);
  EXPECT_DOUBLE_EQ(joined.x(1, 2), 6.0);

  EXPECT_EQ(Dataset::concat({}).size(), 0u);
  EXPECT_EQ(Dataset::concat({Dataset{}, Dataset{}}).size(), 0u);

  const Dataset wide = Dataset::from_samples({{1.0, 2.0, 3.0}}, {1.0});
  EXPECT_THROW(Dataset::concat({a, wide}), std::invalid_argument);
}

TEST(Dataset, ContentHashDistinguishesContentAndShape) {
  const Dataset a = Dataset::from_samples({{1.0, 2.0}, {3.0, 4.0}},
                                          {5.0, 6.0});
  Dataset b = Dataset::from_samples({{1.0, 2.0}, {3.0, 4.0}}, {5.0, 6.0});
  EXPECT_EQ(a.content_hash(), b.content_hash());
  b.y(0, 1) = 6.0000001;
  EXPECT_NE(a.content_hash(), b.content_hash());
  // Same values, different sample order.
  const Dataset swapped = Dataset::from_samples({{3.0, 4.0}, {1.0, 2.0}},
                                                {6.0, 5.0});
  EXPECT_NE(a.content_hash(), swapped.content_hash());
  // Same flattened payload, different shape.
  const Dataset tall = Dataset::from_samples({{1.0, 3.0, 2.0, 4.0}}, {5.0});
  EXPECT_NE(a.content_hash(), tall.content_hash());
  EXPECT_EQ(Dataset{}.content_hash(), Dataset{}.content_hash());
}

TEST(StandardScaler, NormalizesPerFeature) {
  math::Matrix x(2, 4);
  for (std::size_t j = 0; j < 4; ++j) {
    x(0, j) = 10.0 + static_cast<double>(j);   // mean 11.5
    x(1, j) = 100.0 * static_cast<double>(j);  // large scale
  }
  StandardScaler scaler;
  scaler.fit(x);
  const math::Matrix t = scaler.transform(x);
  double m0 = 0.0;
  for (std::size_t j = 0; j < 4; ++j) m0 += t(0, j);
  EXPECT_NEAR(m0 / 4.0, 0.0, 1e-9);
  const auto tv = scaler.transform(std::vector<double>{11.5, 150.0});
  EXPECT_NEAR(tv[0], 0.0, 1e-9);
}

TEST(Trainer, LearnsLinearFunction) {
  stats::Rng rng(13);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 600; ++i) {
    const double a = rng.uniform(-2.0, 2.0);
    const double b = rng.uniform(-2.0, 2.0);
    xs.push_back({a, b});
    ys.push_back(3.0 * a - 2.0 * b + 1.0);
  }
  const Dataset data = Dataset::from_samples(xs, ys);

  Mlp net;
  net.add(std::make_unique<Dense>(2, 16, rng));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<Dense>(16, 1, rng));

  StandardScaler scaler;
  TrainConfig cfg;
  cfg.epochs = 60;
  cfg.batch_size = 32;
  cfg.lr = 5e-3;
  Trainer trainer(cfg);
  const TrainResult result = trainer.train(net, data, scaler);
  EXPECT_LT(result.final_val_mae, 0.35);
  EXPECT_FALSE(result.history.empty());
  // Loss decreased over training.
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
}

TEST(Trainer, ThreadsKnobIsBitIdenticalAtAnyThreadCount) {
  // The minibatch-parallel path fans each layer product's output rows over
  // the pool as pre-assigned disjoint slots — no floating-point reordering
  // at all — so trained weights are bit-identical serial vs 1 vs 8 threads
  // (and hence all pinned trained-weight goldens survive the knob).
  const auto train_with = [](unsigned threads) {
    stats::Rng data_rng(13);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 300; ++i) {
      const double a = data_rng.uniform(-2.0, 2.0);
      const double b = data_rng.uniform(-2.0, 2.0);
      xs.push_back({a, b});
      ys.push_back(3.0 * a - 2.0 * b + 1.0);
    }
    const Dataset data = Dataset::from_samples(xs, ys);
    // The full paper architecture, dropout included: the serial RNG stream
    // of the dropout masks must be preserved by the parallel path.
    stats::Rng net_rng(77);
    Mlp net = make_safety_hijacker_net(net_rng, 2);
    StandardScaler scaler;
    TrainConfig cfg;
    cfg.epochs = 8;
    cfg.batch_size = 32;
    cfg.patience = 0;
    cfg.threads = threads;
    Trainer trainer(cfg);
    (void)trainer.train(net, data, scaler);
    return net.content_hash();
  };
  const std::uint64_t serial = train_with(1);
  EXPECT_EQ(train_with(8), serial);
  EXPECT_EQ(train_with(3), serial);
}

TEST(Serialize, RoundTripPreservesPredictions) {
  stats::Rng rng(31);
  Mlp net = make_safety_hijacker_net(rng);
  StandardScaler scaler;
  scaler.set({1.0, 2.0, 3.0, 4.0, 5.0, 6.0}, {1.0, 1.0, 2.0, 2.0, 3.0, 3.0});

  std::stringstream ss;
  save_model(ss, net, scaler);

  Mlp loaded;
  StandardScaler loaded_scaler;
  load_model(ss, loaded, loaded_scaler);

  math::Matrix x(6, 5);
  stats::Rng xr(7);
  for (auto& v : x.data()) v = xr.uniform(-2.0, 2.0);
  // Materialize the first prediction: predict() returns a reference into a
  // thread-local workspace shared by every Mlp on this thread, so chaining
  // two nets' predictions in one expression would compare a buffer with
  // itself.
  const math::Matrix expected = net.predict(x);
  EXPECT_LT(expected.max_abs_diff(loaded.predict(x)), 1e-12);
  EXPECT_EQ(loaded_scaler.means()[2], 3.0);
}

TEST(Serialize, RejectsCorruptHeader) {
  std::stringstream ss("not-a-model 1\n");
  Mlp net;
  StandardScaler scaler;
  EXPECT_THROW(load_model(ss, net, scaler), std::runtime_error);
  EXPECT_FALSE(load_model_file("/nonexistent/path.txt", net, scaler));
}


// ----------------------------------------- workspace forward / backward

bool bits_equal(const math::Matrix& a, const math::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto ad = a.data();
  const auto bd = b.data();
  return std::memcmp(ad.data(), bd.data(), ad.size() * sizeof(double)) == 0;
}

TEST(MlpWorkspace, ForwardIntoMatchesForwardBitwise) {
  stats::Rng rng(21);
  Mlp net = make_safety_hijacker_net(rng, 6, /*dropout_rate=*/0.0);
  Mlp::Workspace ws;
  for (const std::size_t batch : {1u, 3u, 16u}) {
    math::Matrix x(6, batch);
    for (double& v : x.data()) v = rng.uniform(-2.0, 2.0);
    const math::Matrix legacy = net.forward(x, /*training=*/false);
    const math::Matrix& ws_out = net.forward_into(x, ws, /*training=*/false);
    EXPECT_TRUE(bits_equal(legacy, ws_out)) << "batch " << batch;
    const math::Matrix& pred = net.predict(x);
    EXPECT_TRUE(bits_equal(legacy, pred)) << "batch " << batch;
  }
}

// PR 8 batched-serving contract: a D x B batch through one matrix-matrix
// forward yields, column for column, EXACTLY the bits of B width-1
// forwards. Guaranteed by the kernel contract in math/matrix.hpp (ordered
// ascending-k accumulation per output element, independent of batch width).
TEST(MlpWorkspace, PredictBatchColumnsMatchSingleColumnsBitwise) {
  stats::Rng rng(22);
  Mlp net = make_safety_hijacker_net(rng, 6, /*dropout_rate=*/0.0);
  Mlp::Workspace batch_ws;
  Mlp::Workspace single_ws;
  for (const std::size_t batch : {1u, 2u, 7u, 32u}) {
    math::Matrix x(6, batch);
    for (double& v : x.data()) v = rng.uniform(-2.0, 2.0);
    const math::Matrix batched = net.predict_batch_into(x, batch_ws);
    ASSERT_EQ(batched.cols(), batch);
    math::Matrix col(6, 1);
    for (std::size_t j = 0; j < batch; ++j) {
      for (std::size_t i = 0; i < 6; ++i) col(i, 0) = x(i, j);
      const math::Matrix& single = net.predict_batch_into(col, single_ws);
      for (std::size_t i = 0; i < batched.rows(); ++i) {
        const double bv = batched(i, j);
        const double sv = single(i, 0);
        std::uint64_t bb = 0;
        std::uint64_t sb = 0;
        std::memcpy(&bb, &bv, sizeof bb);
        std::memcpy(&sb, &sv, sizeof sb);
        EXPECT_EQ(bb, sb) << "batch " << batch << " col " << j << " row "
                          << i;
      }
    }
    // predict_batch (thread-local workspace) serves the same bits.
    EXPECT_TRUE(bits_equal(net.predict_batch(x), batched));
  }
}

TEST(MlpWorkspace, BackwardIntoMatchesLegacyGradientsBitwise) {
  // Two identical nets (same seed, dropout disabled so training forwards
  // are deterministic): one driven through the legacy cache-based path,
  // one through a workspace. Parameter gradients must agree bitwise.
  stats::Rng rng_a(22);
  stats::Rng rng_b(22);
  Mlp legacy_net = make_safety_hijacker_net(rng_a, 6, 0.0);
  Mlp ws_net = make_safety_hijacker_net(rng_b, 6, 0.0);

  stats::Rng data_rng(23);
  math::Matrix x(6, 8);
  for (double& v : x.data()) v = data_rng.uniform(-1.5, 1.5);
  math::Matrix grad(1, 8);
  for (double& v : grad.data()) v = data_rng.uniform(-1.0, 1.0);

  const math::Matrix out_legacy = legacy_net.forward(x, /*training=*/true);
  legacy_net.backward(grad);

  Mlp::Workspace ws;
  const math::Matrix& out_ws = ws_net.forward_into(x, ws, /*training=*/true);
  ws_net.backward_into(grad, ws);

  EXPECT_TRUE(bits_equal(out_legacy, out_ws));
  const auto legacy_grads = legacy_net.gradients();
  const auto ws_grads = ws_net.gradients();
  ASSERT_EQ(legacy_grads.size(), ws_grads.size());
  for (std::size_t i = 0; i < legacy_grads.size(); ++i) {
    EXPECT_TRUE(bits_equal(*legacy_grads[i], *ws_grads[i])) << "grad " << i;
  }
}

TEST(MlpWorkspace, ContentHashPinsWeightBits) {
  stats::Rng rng_a(31);
  stats::Rng rng_b(31);
  Mlp a = make_safety_hijacker_net(rng_a);
  Mlp b = make_safety_hijacker_net(rng_b);
  EXPECT_EQ(a.content_hash(), b.content_hash());
  // A single-bit weight change must change the digest.
  auto params = b.parameters();
  ASSERT_FALSE(params.empty());
  (*params[0])(0, 0) = std::nextafter((*params[0])(0, 0), 1e9);
  EXPECT_NE(a.content_hash(), b.content_hash());
}

TEST(MseLoss, GradientIntoMatchesGradient) {
  stats::Rng rng(41);
  math::Matrix pred(1, 7);
  math::Matrix target(1, 7);
  for (double& v : pred.data()) v = rng.uniform(-2.0, 2.0);
  for (double& v : target.data()) v = rng.uniform(-2.0, 2.0);
  math::Matrix g;
  MseLoss::gradient_into(pred, target, g);
  EXPECT_TRUE(bits_equal(g, MseLoss::gradient(pred, target)));
}

TEST(StandardScaler, TransformInPlaceMatchesTransform) {
  stats::Rng rng(42);
  math::Matrix fit(4, 20);
  for (double& v : fit.data()) v = rng.uniform(-5.0, 9.0);
  StandardScaler scaler;
  scaler.fit(fit);
  math::Matrix x(4, 3);
  for (double& v : x.data()) v = rng.uniform(-5.0, 9.0);
  math::Matrix in_place = x;
  scaler.transform_in_place(in_place);
  EXPECT_TRUE(bits_equal(in_place, scaler.transform(x)));
  math::Matrix wrong(3, 1, 0.0);
  EXPECT_THROW(scaler.transform_in_place(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace rt::nn
