// Transfer-matrix harness: per-family vector mapping, the 2x2 golden
// (deterministic accuracies at a fixed seed, thread-count-invariant), full
// registry coverage, and the CSV schema through reporting::write_csv.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/reporting.hpp"
#include "experiments/transfer_matrix.hpp"

namespace rt::experiments {
namespace {

using core::AttackVector;

// The 2x2 golden configuration: two deterministic Move_Out families, an
// 8-launch grid per family, 50% holdout, a cheap 10-epoch fit, and two
// R-mode campaign runs per cell.
TransferConfig golden_config(unsigned threads) {
  TransferConfig cfg;
  cfg.eval_families = {"DS-1", "cut-in"};
  cfg.sh.delta_triggers = {12.0, 20.0};
  cfg.sh.ks = {10, 30};
  cfg.sh.repeats = 1;
  cfg.sh.seed = 123;
  cfg.sh.train.epochs = 10;
  cfg.sh.train.patience = 0;
  cfg.holdout_fraction = 0.5;
  cfg.tolerance_m = 10.0;
  cfg.campaign_runs = 2;
  cfg.threads = threads;
  return cfg;
}

void expect_identical(const TransferMatrix& a, const TransferMatrix& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const TransferCell& ca = a.cells[i];
    const TransferCell& cb = b.cells[i];
    EXPECT_EQ(ca.train_set, cb.train_set) << "cell " << i;
    EXPECT_EQ(ca.eval_family, cb.eval_family) << "cell " << i;
    EXPECT_EQ(ca.n_eval, cb.n_eval) << "cell " << i;
    EXPECT_DOUBLE_EQ(ca.accuracy, cb.accuracy) << "cell " << i;
    EXPECT_DOUBLE_EQ(ca.mae_m, cb.mae_m) << "cell " << i;
    EXPECT_DOUBLE_EQ(ca.ttc_err_s, cb.ttc_err_s) << "cell " << i;
    EXPECT_EQ(ca.campaign_n, cb.campaign_n) << "cell " << i;
    EXPECT_DOUBLE_EQ(ca.triggered_rate, cb.triggered_rate) << "cell " << i;
    EXPECT_DOUBLE_EQ(ca.eb_rate, cb.eb_rate) << "cell " << i;
    EXPECT_DOUBLE_EQ(ca.crash_rate, cb.crash_rate) << "cell " << i;
  }
}

TEST(TransferVector, PerFamilyMapping) {
  // DS-3/DS-4 victims hold position outside the ego lane — Table I admits
  // only Move_In there; everything else launches Move_Out.
  EXPECT_EQ(transfer_vector_for("DS-3"), AttackVector::kMoveIn);
  EXPECT_EQ(transfer_vector_for("DS-4"), AttackVector::kMoveIn);
  for (const char* family : {"DS-1", "DS-2", "DS-5", "cut-in",
                             "staggered-crossing", "dense-follow"}) {
    EXPECT_EQ(transfer_vector_for(family), AttackVector::kMoveOut) << family;
  }
}

TEST(TransferMatrix, TwoByTwoGoldenPinnedAndThreadInvariant) {
  LoopConfig loop;
  const auto one = run_transfer_matrix(golden_config(1), loop);
  ASSERT_EQ(one.cells.size(), 4u);
  EXPECT_EQ(one.train_sets, (std::vector<std::string>{"DS-1", "cut-in"}));
  EXPECT_EQ(one.eval_families,
            (std::vector<std::string>{"DS-1", "cut-in"}));

  // Pinned values (measured at commit time; exact, not statistical — the
  // whole pipeline is deterministic at a fixed seed). Any drift means
  // launch, split, training or campaign semantics changed.
  //
  // Re-pinned for the PR 8 counter-based noise migration (one engine word
  // per Rng::normal through the inverse CDF; the historical
  // std::normal_distribution stream stays reachable via RT_LEGACY_NOISE=1).
  // Old pins on this grid: mae DS-1->DS-1 8.4733690983661347 (acc 0.5),
  // DS-1->cut-in 7.5470456983593621 (acc 1.0), cut-in->DS-1
  // 14.114461896810651 (acc 0.5), cut-in->cut-in 17.376726977518665
  // (acc 0.0), and no cell triggered its 2-run campaign.
  struct Pin {
    const char* train;
    const char* eval;
    int n_eval;
    double accuracy;
    double mae_m;
  };
  const Pin pins[] = {
      {"DS-1", "DS-1", 2, 0.0, 20.077491194220428},
      {"DS-1", "cut-in", 1, 0.0, 24.20696423505046},
      {"cut-in", "DS-1", 2, 0.0, 23.934925207792965},
      {"cut-in", "cut-in", 1, 0.0, 34.06416160743732},
  };
  for (const Pin& pin : pins) {
    const TransferCell& cell = one.at(pin.train, pin.eval);
    EXPECT_EQ(cell.n_eval, pin.n_eval) << pin.train << "->" << pin.eval;
    EXPECT_DOUBLE_EQ(cell.accuracy, pin.accuracy)
        << pin.train << "->" << pin.eval;
    EXPECT_NEAR(cell.mae_m, pin.mae_m, 1e-9)
        << pin.train << "->" << pin.eval;
    EXPECT_GT(cell.ttc_err_s, 0.0);
    // Behavioral columns ran (2 campaign runs; under the counter-based
    // noise the tiny-grid oracles launch in every run — also pinned).
    EXPECT_EQ(cell.campaign_n, 2);
    EXPECT_DOUBLE_EQ(cell.triggered_rate, 1.0);
  }

  // The determinism contract: bit-identical at 8 threads and on a re-run.
  const auto many = run_transfer_matrix(golden_config(8), loop);
  expect_identical(one, many);
}

TEST(TransferMatrix, CoversEveryRegisteredFamily) {
  // Default train sets/eval families = the whole registry: every family
  // trains an oracle and yields held-out launches (n_eval > 0 on the
  // diagonal proves the per-family vector mapping scripts real launches
  // everywhere). Campaigns are disabled to keep this fast.
  LoopConfig loop;
  TransferConfig cfg;
  cfg.sh.delta_triggers = {12.0, 20.0};
  cfg.sh.ks = {10, 30};
  cfg.sh.repeats = 1;
  cfg.sh.seed = 123;
  cfg.sh.train.epochs = 5;
  cfg.sh.train.patience = 0;
  cfg.campaign_runs = 0;
  cfg.threads = 0;  // per-core, exercising the default
  const auto matrix = run_transfer_matrix(cfg, loop);

  const auto keys = sim::ScenarioRegistry::global().keys();
  ASSERT_GE(keys.size(), 8u);
  EXPECT_EQ(matrix.train_sets, keys);
  EXPECT_EQ(matrix.eval_families, keys);
  ASSERT_EQ(matrix.cells.size(), keys.size() * keys.size());
  for (const auto& family : keys) {
    EXPECT_GT(matrix.at(family, family).n_eval, 0) << family;
  }
  for (const auto& cell : matrix.cells) {
    EXPECT_EQ(cell.campaign_n, 0);
    EXPECT_GE(cell.accuracy, 0.0);
    EXPECT_LE(cell.accuracy, 1.0);
  }
}

TEST(TransferMatrix, MultiFamilyTrainSetsAndAtLookup) {
  LoopConfig loop;
  TransferConfig cfg = golden_config(1);
  cfg.train_sets = {{"DS-1,cut-in", {"DS-1", "cut-in"}}};
  const auto matrix = run_transfer_matrix(cfg, loop);
  ASSERT_EQ(matrix.cells.size(), 2u);
  EXPECT_EQ(matrix.train_sets,
            (std::vector<std::string>{"DS-1,cut-in"}));
  // The union curriculum sees both families' launches; its held-out scores
  // exist for both eval columns.
  EXPECT_EQ(matrix.at("DS-1,cut-in", "DS-1").n_eval, 2);
  EXPECT_EQ(matrix.at("DS-1,cut-in", "cut-in").n_eval, 1);
  EXPECT_THROW((void)matrix.at("DS-1,cut-in", "nope"), std::out_of_range);
  EXPECT_THROW((void)matrix.at("nope", "DS-1"), std::out_of_range);
}

TEST(TransferMatrix, CsvSchemaThroughWriteCsv) {
  // A hand-built matrix exercises the CSV schema (including RFC-4180
  // quoting of comma-joined train-set labels) without running simulations.
  TransferMatrix m;
  m.train_sets = {"DS-1,DS-2", "cut-in"};
  m.eval_families = {"DS-1", "cut-in"};
  for (const auto& t : m.train_sets) {
    for (const auto& e : m.eval_families) {
      TransferCell cell;
      cell.train_set = t;
      cell.eval_family = e;
      cell.n_eval = 3;
      cell.accuracy = 0.5;
      cell.mae_m = 4.25;
      cell.ttc_err_s = 0.75;
      cell.campaign_n = 2;
      cell.triggered_rate = 1.0;
      cell.eb_rate = 0.5;
      cell.crash_rate = 0.0;
      m.cells.push_back(cell);
    }
  }

  const auto tmp = std::filesystem::temp_directory_path() /
                   ("transfer_csv_" + std::to_string(::getpid()) + ".csv");
  write_csv(tmp.string(), TransferMatrix::csv_header(), m.csv_rows());

  std::ifstream is(tmp);
  ASSERT_TRUE(is.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  is.close();
  std::filesystem::remove(tmp);

  ASSERT_EQ(lines.size(), 5u);  // header + 4 cells
  EXPECT_EQ(lines[0],
            "train_set,eval_family,n_eval,accuracy,mae_m,ttc_err_s,"
            "campaign_runs,triggered,eb_rate,crash_rate");
  // The comma-joined train-set label is quoted, the rest passes through.
  EXPECT_EQ(lines[1],
            "\"DS-1,DS-2\",DS-1,3,0.500,4.25,0.75,2,1.000,0.500,0.000");
  EXPECT_EQ(lines[4],
            "cut-in,cut-in,3,0.500,4.25,0.75,2,1.000,0.500,0.000");
}


// NOTE: registers into the global registry, so this test must stay last in
// this binary (earlier tests enumerate registry.keys() for full-registry
// coverage).
TEST(TransferVector, UserRegisteredFamilyResolvesWithoutStringMatching) {
  auto& reg = sim::ScenarioRegistry::global();
  if (reg.contains("test-parked-truck")) GTEST_SKIP() << "already registered";
  // DS-3-like geometry under a key the old string-matching (DS-3/DS-4 ->
  // Move_In, else Move_Out) would have misclassified as Move_Out.
  reg.register_scenario(
      {"test-parked-truck",
       "victim holds the parking lane (registered by a test)",
       {},
       [](const sim::ScenarioParams& p, stats::Rng&) {
         sim::Scenario s;
         s.key = "test-parked-truck";
         s.duration = p.duration;
         s.actors.emplace_back(1, sim::ActorType::kVehicle,
                               math::Vec2{p.target_gap, 5.5});
         s.target_id = 1;
         return s;
       }});
  EXPECT_EQ(reg.get("test-parked-truck").victim_geometry,
            sim::VictimGeometry::kOutOfCorridor);
  EXPECT_EQ(transfer_vector_for("test-parked-truck"),
            AttackVector::kMoveIn);
}

TEST(BenchJson, SerializesStableRecordSchema) {
  const std::vector<BenchJsonRecord> records{
      {"table2_campaign_grid", 453.25, 123.456, 1, 20200613},
      {"BM_OracleInference", 100000.5, 0.01, 2, 0},
  };
  const std::string json = bench_json(records);
  EXPECT_EQ(json,
            "[\n"
            "  {\"bench\": \"table2_campaign_grid\", \"runs_per_sec\": 453.250, "
            "\"wall_ms\": 123.456, \"threads\": 1, \"seed\": 20200613},\n"
            "  {\"bench\": \"BM_OracleInference\", \"runs_per_sec\": 100000.500, "
            "\"wall_ms\": 0.010, \"threads\": 2, \"seed\": 0}\n"
            "]\n");
  EXPECT_EQ(bench_json({}), "[\n]\n");
  // Exotic names cannot break the JSON.
  const std::string escaped =
      bench_json({{"we\"ird", 1.0, 1.0, 1, 0}});
  EXPECT_NE(escaped.find("we\\\"ird"), std::string::npos);
}

}  // namespace
}  // namespace rt::experiments
