// Cross-module property and invariant tests: sweeps over parameter grids
// that pin down behaviours the individual unit tests only spot-check.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ads/planner.hpp"
#include "experiments/reporting.hpp"
#include "core/scenario_matcher.hpp"
#include "core/trajectory_hijacker.hpp"
#include "perception/camera_model.hpp"
#include "perception/detector_model.hpp"
#include "perception/fusion.hpp"
#include "sim/ego_vehicle.hpp"
#include "stats/fit.hpp"
#include "stats/summary.hpp"

namespace rt {
namespace {

// ---------------------------------------------------------------- ego plant

/// Property: from any initial speed, full braking stops the EV within the
/// analytic stopping distance plus the jerk-ramp allowance, and never
/// produces reverse motion.
class EgoStoppingTest : public ::testing::TestWithParam<double> {};

TEST_P(EgoStoppingTest, StopsWithinEnvelope) {
  const double v0 = GetParam();
  sim::EgoVehicle ego(0.0, v0);
  const double dt = 1.0 / 15.0;
  int steps = 0;
  while (ego.speed() > 0.0 && steps < 3000) {
    ego.step(dt, -ego.limits().max_decel);
    ++steps;
  }
  EXPECT_EQ(ego.speed(), 0.0);
  const double analytic = v0 * v0 / (2.0 * ego.limits().max_decel);
  // Jerk ramp: reaching full decel takes max_decel/max_jerk seconds.
  const double ramp = ego.limits().max_decel / ego.limits().max_jerk;
  const double allowance = v0 * (ramp + dt) + 1.0;
  EXPECT_LE(ego.x(), analytic + allowance);
  EXPECT_GE(ego.x(), analytic * 0.8);
}

INSTANTIATE_TEST_SUITE_P(Speeds, EgoStoppingTest,
                         ::testing::Values(3.0, 6.94, 10.0, 12.5));

// ------------------------------------------------------------ camera model

/// Property: image-x position is monotone in world lateral offset, and
/// bbox width is monotone (decreasing) in range.
TEST(CameraProperty, MonotoneGeometry) {
  perception::CameraModel cam;
  double prev_u = 1e18;
  for (double y = -6.0; y <= 6.0; y += 1.0) {
    sim::GroundTruthObject g;
    g.type = sim::ActorType::kVehicle;
    g.dims = sim::default_dimensions(g.type);
    g.rel_position = {40.0, y};
    const auto box = cam.project(g);
    ASSERT_TRUE(box.has_value());
    EXPECT_LT(box->cx, prev_u);  // left in world = smaller u, strictly
    prev_u = box->cx;
  }
  double prev_w = 1e18;
  for (double x = 10.0; x <= 120.0; x += 10.0) {
    sim::GroundTruthObject g;
    g.type = sim::ActorType::kVehicle;
    g.dims = sim::default_dimensions(g.type);
    g.rel_position = {x, 0.0};
    const auto box = cam.project(g);
    ASSERT_TRUE(box.has_value());
    EXPECT_LT(box->w, prev_w);
    prev_w = box->w;
  }
}

/// Property: back_project(project(x)) is the identity over a dense grid.
TEST(CameraProperty, RoundTripGrid) {
  perception::CameraModel cam;
  for (double x = 5.0; x <= 140.0; x += 7.5) {
    for (double y = -7.0; y <= 7.0; y += 1.75) {
      sim::GroundTruthObject g;
      g.type = sim::ActorType::kPedestrian;
      g.dims = sim::default_dimensions(g.type);
      g.rel_position = {x, y};
      const auto box = cam.project(g);
      if (!box) continue;  // outside frustum
      const auto pos = cam.back_project(*box);
      ASSERT_TRUE(pos.has_value());
      EXPECT_NEAR(pos->x, x, 1e-6);
      EXPECT_NEAR(pos->y, y, 1e-6);
    }
  }
}

// -------------------------------------------------------------- noise model

/// Property: the mixture's outlier sigma formula preserves the population
/// variance for every class/axis combination.
TEST(NoiseModelProperty, MixtureVariancePreserved) {
  const auto model = perception::DetectorNoiseModel::paper_defaults();
  for (const auto cls :
       {sim::ActorType::kVehicle, sim::ActorType::kPedestrian}) {
    const auto& m = model.for_class(cls);
    const double so = m.outlier_sigma(m.center_x.sigma, m.core_sigma_x);
    const double mix_var = (1.0 - m.outlier_prob) * m.core_sigma_x *
                               m.core_sigma_x +
                           m.outlier_prob * so * so;
    EXPECT_NEAR(mix_var, m.center_x.sigma * m.center_x.sigma, 1e-9);
  }
}

/// Property: the paper's class asymmetries are encoded: pedestrians have a
/// wider lateral noise band but a shorter streak tail than vehicles.
TEST(NoiseModelProperty, ClassAsymmetries) {
  const auto m = perception::DetectorNoiseModel::paper_defaults();
  EXPECT_GT(m.pedestrian.center_x.sigma, m.vehicle.center_x.sigma);
  EXPECT_LT(m.pedestrian.streak_p99, m.vehicle.streak_p99);
  EXPECT_GT(m.pedestrian.streak.lambda, m.vehicle.streak.lambda);
}

// ----------------------------------------------------------------- matcher

/// Property: Move_Out and Disappear are interchangeable in Table I — any
/// state admitting one admits the other (§IV-A).
TEST(ScenarioMatcherProperty, MoveOutDisappearInterchangeable) {
  core::ScenarioMatcher sm;
  for (double y = -6.0; y <= 6.0; y += 0.5) {
    for (double vy = -2.0; vy <= 2.0; vy += 0.25) {
      perception::WorldTrack t;
      t.cls = sim::ActorType::kVehicle;
      t.rel_position = {30.0, y};
      t.rel_velocity = {0.0, vy};
      EXPECT_EQ(sm.matches(t, core::AttackVector::kMoveOut),
                sm.matches(t, core::AttackVector::kDisappear))
          << "y=" << y << " vy=" << vy;
    }
  }
}

/// Property: exactly one Table-I row applies — Move_In is never admissible
/// together with Move_Out.
TEST(ScenarioMatcherProperty, MoveInExclusive) {
  core::ScenarioMatcher sm;
  for (double y = -6.0; y <= 6.0; y += 0.5) {
    for (double vy = -2.0; vy <= 2.0; vy += 0.25) {
      perception::WorldTrack t;
      t.cls = sim::ActorType::kPedestrian;
      t.rel_position = {25.0, y};
      t.rel_velocity = {0.0, vy};
      EXPECT_FALSE(sm.matches(t, core::AttackVector::kMoveIn) &&
                   sm.matches(t, core::AttackVector::kMoveOut))
          << "y=" << y << " vy=" << vy;
    }
  }
}

// ------------------------------------------------------ trajectory hijacker

/// Property sweep over ranges and directions: the hold phase always
/// presents the full +-Omega offset with the correct sign, and K' shrinks
/// as the noise band widens.
class HijackerRangeTest : public ::testing::TestWithParam<double> {};

TEST_P(HijackerRangeTest, HoldOffsetSignAndMagnitude) {
  const double range = GetParam();
  const perception::CameraModel cam;
  const auto noise = perception::DetectorNoiseModel::paper_defaults();
  for (const double dir : {+1.0, -1.0}) {
    core::TrajectoryHijacker th(core::TrajectoryHijacker::Config{}, cam,
                                noise);
    th.begin(core::AttackVector::kMoveOut, dir, 2.4);
    sim::GroundTruthObject g;
    g.type = sim::ActorType::kVehicle;
    g.dims = sim::default_dimensions(g.type);
    g.rel_position = {range, 0.0};
    const auto truth = cam.project(g);
    ASSERT_TRUE(truth.has_value());
    math::Bbox pred = *truth;
    for (int f = 0; f < 80 && !th.in_hold_phase(); ++f) {
      perception::CameraFrame frame;
      perception::Detection d;
      d.bbox = *truth;
      d.cls = g.type;
      frame.detections.push_back(d);
      th.apply(frame, 0, pred, range);
      pred = frame.detections[0].bbox;
    }
    ASSERT_TRUE(th.in_hold_phase()) << "range " << range << " dir " << dir;
    EXPECT_NEAR(th.accumulated_offset_m(), dir * 2.4, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, HijackerRangeTest,
                         ::testing::Values(15.0, 25.0, 45.0, 70.0));

TEST(HijackerProperty, WiderBandShiftsFaster) {
  const perception::CameraModel cam;
  const auto noise = perception::DetectorNoiseModel::paper_defaults();
  auto k_prime_for = [&](double sigma_mult) {
    core::TrajectoryHijacker::Config cfg;
    cfg.sigma_mult = sigma_mult;
    core::TrajectoryHijacker th(cfg, cam, noise);
    th.begin(core::AttackVector::kMoveOut, 1.0, 2.4);
    sim::GroundTruthObject g;
    g.type = sim::ActorType::kVehicle;
    g.dims = sim::default_dimensions(g.type);
    g.rel_position = {30.0, 0.0};
    const auto truth = cam.project(g);
    math::Bbox pred = *truth;
    for (int f = 0; f < 120 && !th.in_hold_phase(); ++f) {
      perception::CameraFrame frame;
      perception::Detection d;
      d.bbox = *truth;
      d.cls = g.type;
      frame.detections.push_back(d);
      th.apply(frame, 0, pred, 30.0);
      pred = frame.detections[0].bbox;
    }
    return th.k_prime();
  };
  EXPECT_LE(k_prime_for(1.0), k_prime_for(0.5));
}

// ------------------------------------------------------------------ planner

/// Property: the planner's output command is always inside the actuation
/// envelope, across a grid of lead states.
TEST(PlannerProperty, CommandAlwaysBounded) {
  ads::LongitudinalPlanner planner;
  for (double gap = 5.0; gap <= 80.0; gap += 7.5) {
    for (double rel_v = -14.0; rel_v <= 4.0; rel_v += 2.0) {
      perception::FusedObject o;
      o.id = 1;
      o.cls = sim::ActorType::kVehicle;
      o.rel_position = {gap, 0.0};
      o.rel_velocity = {rel_v, 0.0};
      o.camera_hits = 20;
      o.lidar_corroborated = true;
      ads::WorldModel w;
      w.ego_speed = 12.5;
      w.objects = {o};
      const auto out = planner.plan(w, 1.8, 4.6);
      EXPECT_LE(out.accel_command, planner.config().max_accel + 1e-9);
      EXPECT_GE(out.accel_command, -planner.config().eb_command_decel - 1e-9);
      EXPECT_GE(out.required_decel, 0.0);
    }
  }
}

/// Property: closer + faster-closing leads never demand *less* deceleration.
TEST(PlannerProperty, RequiredDecelMonotoneInGap) {
  for (double v = 6.0; v <= 12.5; v += 2.0) {
    double prev_req = 1e18;
    for (double gap = 8.0; gap <= 60.0; gap += 4.0) {
      ads::LongitudinalPlanner planner;  // fresh: avoid hysteresis carryover
      perception::FusedObject o;
      o.id = 1;
      o.cls = sim::ActorType::kVehicle;
      o.rel_position = {gap + 4.6, 0.0};
      o.rel_velocity = {-v, 0.0};  // stationary obstacle
      o.camera_hits = 20;
      o.lidar_corroborated = true;
      ads::WorldModel w;
      w.ego_speed = v;
      w.objects = {o};
      const auto out = planner.plan(w, 1.8, 4.6);
      EXPECT_LE(out.required_decel, prev_req + 1e-9)
          << "v=" << v << " gap=" << gap;
      prev_req = out.required_decel;
    }
  }
}

// ------------------------------------------------------------------ fusion

/// Property: publication is latched — once an object is published, frames
/// where its camera track persists keep it published even if its hit count
/// classification would no longer qualify.
TEST(FusionProperty, PublicationLatch) {
  perception::Fusion fusion(perception::FusionConfig{},
                            perception::LidarConfig{}, 1.0 / 15.0);
  perception::WorldTrack cam;
  cam.track_id = 1;
  cam.cls = sim::ActorType::kVehicle;
  cam.rel_position = {30.0, 0.0};
  cam.hits = 2;
  perception::LidarTrack lid;
  lid.track_id = 1;
  lid.rel_position = {30.0, 0.0};
  lid.hits = 5;
  // Paired: published immediately.
  EXPECT_EQ(fusion.fuse({cam}, {lid}).size(), 1u);
  // LiDAR lost (e.g. hijacked camera track drifted): still published.
  cam.rel_position.y = 2.5;
  EXPECT_EQ(fusion.fuse({cam}, {}).size(), 1u);
}

// -------------------------------------------------------------------- fits

/// Property: Normal quantile/fit round-trip across parameter grid.
class NormalFitRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(NormalFitRoundTrip, QuantileMatchesSampling) {
  const auto [mu, sigma] = GetParam();
  stats::Rng rng(2024);
  std::vector<double> xs;
  for (int i = 0; i < 40000; ++i) xs.push_back(rng.normal(mu, sigma));
  const auto fit = stats::fit_normal(xs);
  EXPECT_NEAR(fit.mu, mu, 0.03 * std::max(1.0, std::abs(mu)) + 0.02);
  EXPECT_NEAR(fit.sigma, sigma, 0.03 * sigma + 0.01);
  const double p99_emp = stats::percentile(xs, 99.0);
  EXPECT_NEAR(fit.p99(), p99_emp, 0.12 * sigma + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NormalFitRoundTrip,
    ::testing::Values(std::tuple{0.0, 1.0}, std::tuple{0.023, 0.464},
                      std::tuple{0.254, 2.010}, std::tuple{-1.5, 0.2}));

// ------------------------------------------------------------- csv round trip

/// Strict RFC-4180 parser used only by the round-trip property below: records
/// separated by '\n', cells by ',', quoted cells may embed separators and
/// doubled quotes. Returns rows of unescaped cells.
std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"' && cell.empty()) {
      quoted = true;
    } else if (c == ',') {
      row.push_back(std::move(cell));
      cell.clear();
    } else if (c == '\n') {
      row.push_back(std::move(cell));
      cell.clear();
      rows.push_back(std::move(row));
      row.clear();
    } else {
      cell += c;
    }
  }
  if (!cell.empty() || !row.empty()) {
    row.push_back(std::move(cell));
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Property: any cell content — commas, quotes, embedded newlines, CR,
/// non-ASCII bytes — survives write_csv unchanged once parsed back per
/// RFC 4180. Randomized over a dirty alphabet; failures print the seed.
TEST(CsvProperty, RandomizedCellsRoundTripThroughWriteCsv) {
  const std::string alphabet = "abzAZ09 ,\"\n\r;|\t'éπ–";
  stats::Rng rng(4180);
  const std::string path =
      ::testing::TempDir() + "/robotack_csv_roundtrip.csv";
  for (int trial = 0; trial < 40; ++trial) {
    const int n_rows = static_cast<int>(rng.uniform_int(1, 5));
    const int n_cols = static_cast<int>(rng.uniform_int(1, 4));
    std::vector<std::string> header;
    for (int c = 0; c < n_cols; ++c) header.push_back("h" + std::to_string(c));
    std::vector<std::vector<std::string>> rows(n_rows);
    for (auto& row : rows) {
      for (int c = 0; c < n_cols; ++c) {
        std::string cell;
        const int len = static_cast<int>(rng.uniform_int(0, 12));
        for (int k = 0; k < len; ++k) {
          cell += alphabet[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(alphabet.size()) - 1))];
        }
        // A lone trailing CR is indistinguishable from a CRLF line ending
        // on read-back; RFC 4180 writers quote it, and the newline split
        // below is '\n'-exact, so keep the cell but make the case explicit.
        row.push_back(std::move(cell));
      }
    }
    experiments::write_csv(path, header, rows);
    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is.good());
    std::stringstream buffer;
    buffer << is.rdbuf();
    const auto parsed = parse_csv(buffer.str());
    ASSERT_EQ(parsed.size(), rows.size() + 1) << "trial " << trial;
    EXPECT_EQ(parsed[0], header) << "trial " << trial;
    for (int r = 0; r < n_rows; ++r) {
      EXPECT_EQ(parsed[static_cast<std::size_t>(r) + 1],
                rows[static_cast<std::size_t>(r)])
          << "trial " << trial << " row " << r;
    }
  }
}

}  // namespace
}  // namespace rt
