#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "experiments/campaign.hpp"
#include "experiments/campaign_grid.hpp"
#include "experiments/campaign_serde.hpp"
#include "experiments/defense_grid.hpp"
#include "experiments/transfer_matrix.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"
#include "service/campaign_service.hpp"
#include "service/cell_cache.hpp"
#include "service/sharded_scheduler.hpp"
#include "sim/scenario_registry.hpp"

namespace rt::service {
namespace {

namespace fs = std::filesystem;
using experiments::AttackMode;
using experiments::CampaignResult;
using experiments::CampaignRunner;
using experiments::CampaignScheduler;
using experiments::CampaignSpec;
using experiments::LoopConfig;

/// Canonical bytes of a whole grid: the strongest possible equality (every
/// field of every run, bit-exact doubles, via the serde layer).
std::string grid_bytes(const std::vector<CampaignResult>& results) {
  std::string blob;
  for (const auto& r : results) {
    blob += experiments::serialize_campaign_result(r);
  }
  return blob;
}

/// Fresh per-test scratch dir under the gtest temp root.
std::string scratch_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Every registered scenario family × its natural vector, hermetic NoSh
/// mode (no oracles), `runs` runs each.
std::vector<CampaignSpec> family_grid(int runs, std::uint64_t seed) {
  experiments::CampaignGridBuilder builder;
  builder.runs(runs).seed(seed).modes({AttackMode::kNoSh});
  for (const auto& family : sim::ScenarioRegistry::global().keys()) {
    builder.scenarios({family})
        .vectors({experiments::transfer_vector_for(family)})
        .add_grid();
  }
  return builder.build();
}

CampaignSpec small_spec(const char* name = "DS-1-Disappear-RwoSH-t",
                        std::uint64_t seed = 4242) {
  return {name, "DS-1", core::AttackVector::kDisappear, AttackMode::kNoSh,
          2,    seed};
}

// ------------------------------------------------- ShardedCampaignScheduler

TEST(ShardedScheduler, BitIdenticalToInProcessAtAnyWorkerCount) {
  // The tentpole contract: an 8-family grid forked over 1, 2 and 4 worker
  // processes reassembles bit-identically to the in-process scheduler —
  // every per-run double crosses the pipe as its raw bit pattern.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const auto specs = family_grid(/*runs=*/2, /*seed=*/1122);
  ASSERT_GE(specs.size(), 8u);
  const std::string reference =
      grid_bytes(CampaignScheduler(runner, 2).run_all(specs));
  for (unsigned workers : {1u, 2u, 4u}) {
    ShardOptions opts;
    opts.workers = workers;
    const ShardedCampaignScheduler sharded(runner, opts);
    const auto results = sharded.run_all(specs);
    EXPECT_EQ(grid_bytes(results), reference) << workers << " workers";
    EXPECT_EQ(sharded.stats().workers, workers);
    EXPECT_EQ(sharded.stats().worker_deaths, 0) << workers << " workers";
    EXPECT_EQ(sharded.stats().shard_retries, 0) << workers << " workers";
  }
}

TEST(ShardedScheduler, MoreWorkersThanCellsClampsAndCompletes) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const std::vector<CampaignSpec> specs{small_spec()};  // 2 cells
  ShardOptions opts;
  opts.workers = 16;
  const ShardedCampaignScheduler sharded(runner, opts);
  const auto results = sharded.run_all(specs);
  EXPECT_EQ(sharded.stats().workers, 2u);
  EXPECT_EQ(grid_bytes(results),
            grid_bytes(CampaignScheduler(runner, 1).run_all(specs)));
}

TEST(ShardedScheduler, EmptyGridReturnsEmptyResults) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const ShardedCampaignScheduler sharded(runner, {});
  EXPECT_TRUE(sharded.run_all({}).empty());
}

TEST(ShardedScheduler, WorkerDeathIsRetriedToIdenticalResults) {
  // A worker that dies mid-shard (here: _exit(42) after streaming one
  // cell) degrades to a re-run of its missing cells — never a hung parent,
  // never a hole, and the reassembled grid is still bit-identical.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const auto specs = family_grid(/*runs=*/2, /*seed=*/3344);
  const std::string reference =
      grid_bytes(CampaignScheduler(runner, 2).run_all(specs));

  ShardOptions opts;
  opts.workers = 2;
  opts.crash_shard = 0;
  opts.crash_after_cells = 1;
  const ShardedCampaignScheduler sharded(runner, opts);
  const auto results = sharded.run_all(specs);
  EXPECT_EQ(grid_bytes(results), reference);
  EXPECT_GE(sharded.stats().worker_deaths, 1);
  EXPECT_GE(sharded.stats().shard_retries, 1);
}

TEST(ShardedScheduler, ExhaustedRetriesFallBackInProcess) {
  // max_retries == 0: the parent itself recovers the crashed shard's
  // missing cells, so results stay complete and identical regardless.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const std::vector<CampaignSpec> specs{small_spec("a", 1),
                                        small_spec("b", 2)};
  ShardOptions opts;
  opts.workers = 2;
  opts.max_retries = 0;
  opts.crash_shard = 1;
  opts.crash_after_cells = 0;
  const ShardedCampaignScheduler sharded(runner, opts);
  const auto results = sharded.run_all(specs);
  EXPECT_EQ(grid_bytes(results),
            grid_bytes(CampaignScheduler(runner, 1).run_all(specs)));
  EXPECT_GE(sharded.stats().worker_deaths, 1);
  EXPECT_EQ(sharded.stats().shard_retries, 0);
  EXPECT_GT(sharded.stats().cells_recovered_in_process, 0);
}

#if RT_OBS_TRACING
TEST(ShardedScheduler, TwoWorkerTraceMergesParentAndBothWorkers) {
  // Spans recorded inside forked workers ship back over the result pipe
  // and land on the parent's timeline under their own pid lane — and an
  // armed tracer must not move a single result byte.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const auto specs = family_grid(/*runs=*/2, /*seed=*/5566);
  const std::string reference =
      grid_bytes(CampaignScheduler(runner, 2).run_all(specs));
  std::size_t cells = 0;
  for (const auto& s : specs) cells += static_cast<std::size_t>(s.runs);

  obs::Tracer::global().clear();
  obs::Tracer::global().arm(obs::TraceConfig{1 << 12});
  ShardOptions opts;
  opts.workers = 2;
  const ShardedCampaignScheduler sharded(runner, opts);
  const auto results = sharded.run_all(specs);
  obs::Tracer::global().disarm();

  EXPECT_EQ(grid_bytes(results), reference) << "tracing changed the bytes";
  EXPECT_EQ(obs::Tracer::global().absorb_failures(), 0u);
  const obs::ParsedTrace parsed =
      obs::parse_chrome_trace(obs::Tracer::global().render_chrome_trace());
  EXPECT_TRUE(parsed.has_span("shard_wave"));
  EXPECT_EQ(parsed.count_spans("shard_worker"), 2u);
  // Every grid cell ran (exactly once) inside a worker.
  EXPECT_EQ(parsed.count_spans("campaign_cell"), cells);
  // pid 0 = parent, pids 1 and 2 = the two forked workers.
  const auto pids = parsed.span_pids();
  ASSERT_EQ(pids.size(), 3u);
  for (const std::uint64_t pid : {0u, 1u, 2u}) {
    EXPECT_EQ(std::count(pids.begin(), pids.end(), pid), 1) << "pid " << pid;
  }
  obs::Tracer::global().clear();
}
#endif  // RT_OBS_TRACING

// ------------------------------------------------------------ fingerprint

TEST(CellCache, FingerprintChangesOnEveryResultDeterminingField) {
  const CampaignSpec base = small_spec();
  const std::uint64_t fp = campaign_cell_fingerprint(base);
  EXPECT_EQ(campaign_cell_fingerprint(small_spec()), fp) << "not stable";

  CampaignSpec m = base;
  m.name = "other-name";
  EXPECT_NE(campaign_cell_fingerprint(m), fp) << "name";
  m = base;
  m.scenario = "DS-2";
  EXPECT_NE(campaign_cell_fingerprint(m), fp) << "scenario";
  m = base;
  m.vector = core::AttackVector::kMoveOut;
  EXPECT_NE(campaign_cell_fingerprint(m), fp) << "vector";
  m = base;
  m.mode = AttackMode::kGolden;
  EXPECT_NE(campaign_cell_fingerprint(m), fp) << "mode";
  m = base;
  m.runs += 1;
  EXPECT_NE(campaign_cell_fingerprint(m), fp) << "runs";
  m = base;
  m.seed += 1;
  EXPECT_NE(campaign_cell_fingerprint(m), fp) << "seed";
  m = base;
  m.params = sim::ScenarioParams{};
  EXPECT_NE(campaign_cell_fingerprint(m), fp) << "params presence";
  {
    CampaignSpec p1 = base;
    p1.params = sim::ScenarioParams{};
    CampaignSpec p2 = p1;
    const auto name = sim::scenario_param_names().front();
    sim::set_scenario_param(*p2.params,name,
                            sim::get_scenario_param(*p1.params, name) + 0.5);
    EXPECT_NE(campaign_cell_fingerprint(p1), campaign_cell_fingerprint(p2))
        << "param value";
  }
  m = base;
  m.monitors = {"innovation-gate"};
  EXPECT_NE(campaign_cell_fingerprint(m), fp) << "monitors";
  EXPECT_NE(campaign_cell_fingerprint(base, kCampaignCodeVersion + 1), fp)
      << "code version";
}

// ------------------------------------------------------------- cell cache

TEST(CellCache, MissThenStoreThenBitExactHit) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  CampaignCellCache cache({scratch_dir("cache_hit")});
  const CampaignSpec spec = small_spec();

  EXPECT_FALSE(cache.lookup(spec).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);

  const CampaignResult fresh = runner.run(spec);
  cache.store(spec, fresh);
  EXPECT_EQ(cache.stats().stores, 1u);

  const auto hit = cache.lookup(spec);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(experiments::serialize_campaign_result(*hit),
            experiments::serialize_campaign_result(fresh));
}

TEST(CellCache, StaleCodeVersionIsIgnoredNeverServed) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const std::string dir = scratch_dir("cache_stale");
  const CampaignSpec spec = small_spec();
  const CampaignResult fresh = runner.run(spec);
  {
    CampaignCellCache old_cache({dir, 0, kCampaignCodeVersion});
    old_cache.store(spec, fresh);
  }
  // Same directory, newer simulation semantics: fingerprints differ, so
  // even a same-named file (forced here by writing under the new key's
  // path) is rejected on its header, counted stale.
  CampaignCellCache new_cache({dir, 0, kCampaignCodeVersion + 1});
  EXPECT_FALSE(new_cache.lookup(spec).has_value());
  EXPECT_EQ(new_cache.stats().stale + new_cache.stats().misses, 1u);

  // Force the stale-header path precisely: copy the old entry to the path
  // the new cache would use.
  CampaignCellCache old_cache({dir, 0, kCampaignCodeVersion});
  fs::copy_file(old_cache.entry_path(spec), new_cache.entry_path(spec),
                fs::copy_options::overwrite_existing);
  EXPECT_FALSE(new_cache.lookup(spec).has_value());
  EXPECT_EQ(new_cache.stats().stale, 1u);
}

TEST(CellCache, CorruptAndTruncatedEntriesAreCountedNotServed) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  CampaignCellCache cache({scratch_dir("cache_corrupt")});
  const CampaignSpec spec = small_spec();
  cache.store(spec, runner.run(spec));

  // Truncate the entry: the serde layer throws, the cache counts corrupt.
  const std::string path = cache.entry_path(spec);
  std::string blob;
  {
    std::ifstream in(path, std::ios::binary);
    blob.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << blob.substr(0, blob.size() / 2);
  }
  EXPECT_FALSE(cache.lookup(spec).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);

  // Garbage header.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not a cache file\n";
  }
  EXPECT_FALSE(cache.lookup(spec).has_value());
  EXPECT_EQ(cache.stats().corrupt, 2u);
}

TEST(CellCache, LruEvictionRemovesOldestFirst) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const std::string dir = scratch_dir("cache_lru");
  CampaignCellCache cache({dir, /*max_bytes=*/0});  // store unbounded
  std::vector<CampaignSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(small_spec("lru", 1000 + static_cast<std::uint64_t>(i)));
    cache.store(specs.back(), runner.run(specs.back()));
  }
  // Deterministic ages regardless of filesystem timestamp granularity:
  // entry i is i hours old, entry 0 oldest.
  const auto now = fs::file_time_type::clock::now();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    fs::last_write_time(cache.entry_path(specs[i]),
                        now - std::chrono::hours(specs.size() - i));
  }
  const std::uintmax_t entry_size =
      fs::file_size(cache.entry_path(specs[0]));
  // Budget for two entries: the two oldest must go, the two newest stay.
  const std::size_t removed = cache.evict_to_limit(
      static_cast<std::size_t>(entry_size) * 2 + entry_size / 2);
  EXPECT_EQ(removed, 2u);
  EXPECT_FALSE(fs::exists(cache.entry_path(specs[0])));
  EXPECT_FALSE(fs::exists(cache.entry_path(specs[1])));
  EXPECT_TRUE(fs::exists(cache.entry_path(specs[2])));
  EXPECT_TRUE(fs::exists(cache.entry_path(specs[3])));
  EXPECT_EQ(cache.stats().evictions, 2u);

  // A hit re-touches its entry: after hitting specs[2], adding age to
  // specs[3] and evicting to one entry keeps the freshly-hit specs[2].
  fs::last_write_time(cache.entry_path(specs[3]),
                      now - std::chrono::hours(1));
  ASSERT_TRUE(cache.lookup(specs[2]).has_value());
  cache.evict_to_limit(static_cast<std::size_t>(entry_size) +
                       entry_size / 2);
  EXPECT_TRUE(fs::exists(cache.entry_path(specs[2])));
  EXPECT_FALSE(fs::exists(cache.entry_path(specs[3])));
}

TEST(CellCache, TouchCounterLruBeatsCoarseMtimeTies) {
  // Regression (PR 8): eviction order used to be (mtime, path). On a
  // filesystem with 1 s timestamp granularity a hit and a cold store land
  // on the SAME mtime, so the just-hit entry could lose the path tie-break
  // and be evicted before a cold one. The persisted monotonic touch
  // counter orders accesses exactly even when every mtime is equal.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const std::string dir = scratch_dir("cache_touch");
  std::vector<CampaignSpec> specs;
  std::size_t hit = 0;
  {
    CampaignCellCache cache({dir, /*max_bytes=*/0});
    for (int i = 0; i < 3; ++i) {
      specs.push_back(
          small_spec("touch", 3000 + static_cast<std::uint64_t>(i)));
      cache.store(specs.back(), runner.run(specs.back()));
    }
    // Worst case: every entry carries the identical mtime.
    const auto now = fs::file_time_type::clock::now();
    for (const auto& s : specs) {
      fs::last_write_time(cache.entry_path(s), now);
    }
    // Hit the entry whose path sorts FIRST — exactly the entry the old
    // (mtime, path) ordering would pick as the eviction victim.
    for (std::size_t i = 1; i < specs.size(); ++i) {
      if (cache.entry_path(specs[i]) < cache.entry_path(specs[hit])) {
        hit = i;
      }
    }
    ASSERT_TRUE(cache.lookup(specs[hit]).has_value());
    const auto entry_size = fs::file_size(cache.entry_path(specs[0]));
    cache.evict_to_limit(static_cast<std::size_t>(entry_size) * 2 +
                         static_cast<std::size_t>(entry_size) / 2);
    EXPECT_TRUE(fs::exists(cache.entry_path(specs[hit])))
        << "just-hit entry was evicted before a cold one";
    // The evicted entry takes its sidecar with it.
    std::size_t rtcr = 0;
    std::size_t touch = 0;
    for (const auto& de : fs::directory_iterator(dir)) {
      rtcr += de.path().extension() == ".rtcr" ? 1 : 0;
      touch += de.path().extension() == ".touch" ? 1 : 0;
    }
    EXPECT_EQ(rtcr, 2u);
    EXPECT_EQ(touch, 2u);
  }
  // A reopened cache reseeds its counter from the persisted max, so a hit
  // in the new process still outranks every access of the old one.
  {
    CampaignCellCache cache({dir, /*max_bytes=*/0});
    std::vector<std::size_t> alive;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (fs::exists(cache.entry_path(specs[i]))) alive.push_back(i);
    }
    ASSERT_EQ(alive.size(), 2u);
    const auto now = fs::file_time_type::clock::now();
    for (const std::size_t i : alive) {
      fs::last_write_time(cache.entry_path(specs[i]), now);
    }
    ASSERT_TRUE(cache.lookup(specs[alive[0]]).has_value());
    const auto entry_size = fs::file_size(cache.entry_path(specs[alive[0]]));
    cache.evict_to_limit(static_cast<std::size_t>(entry_size) +
                         static_cast<std::size_t>(entry_size) / 2);
    EXPECT_TRUE(fs::exists(cache.entry_path(specs[alive[0]])));
    EXPECT_FALSE(fs::exists(cache.entry_path(specs[alive[1]])));
  }
}

TEST(CellCache, EvictionFallsBackToMtimeForCounterlessEntries) {
  // Entries as an older build left them (no .touch sidecar) still evict in
  // mtime order, and sort before any counter-bearing entry.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const std::string dir = scratch_dir("cache_mtime_fallback");
  CampaignCellCache cache({dir, /*max_bytes=*/0});
  std::vector<CampaignSpec> specs;
  for (int i = 0; i < 3; ++i) {
    specs.push_back(
        small_spec("fallback", 4000 + static_cast<std::uint64_t>(i)));
    cache.store(specs.back(), runner.run(specs.back()));
  }
  for (const auto& s : specs) {
    fs::remove(fs::path(cache.entry_path(s) + ".touch"));
  }
  const auto now = fs::file_time_type::clock::now();
  for (const auto& s : specs) fs::last_write_time(cache.entry_path(s), now);
  fs::last_write_time(cache.entry_path(specs[1]),
                      now - std::chrono::hours(2));
  const auto entry_size = fs::file_size(cache.entry_path(specs[0]));
  cache.evict_to_limit(static_cast<std::size_t>(entry_size) * 2 +
                       static_cast<std::size_t>(entry_size) / 2);
  EXPECT_FALSE(fs::exists(cache.entry_path(specs[1])));
  EXPECT_TRUE(fs::exists(cache.entry_path(specs[0])));
  EXPECT_TRUE(fs::exists(cache.entry_path(specs[2])));
}

TEST(CellCache, StoreSweepsToConfiguredBudget) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const std::string dir = scratch_dir("cache_budget");
  const CampaignSpec probe = small_spec("probe", 1);
  std::uintmax_t entry_size = 0;
  {
    CampaignCellCache sizer({dir, 0});
    sizer.store(probe, runner.run(probe));
    entry_size = fs::file_size(sizer.entry_path(probe));
  }
  fs::remove_all(dir);
  // Budget of ~2 entries: after storing 4, at most 2 files remain.
  CampaignCellCache cache(
      {dir, static_cast<std::size_t>(entry_size) * 2 + entry_size / 2});
  for (int i = 0; i < 4; ++i) {
    const auto spec =
        small_spec("budget", 2000 + static_cast<std::uint64_t>(i));
    cache.store(spec, runner.run(spec));
  }
  std::size_t files = 0;
  for (const auto& de : fs::directory_iterator(dir)) {
    files += de.path().extension() == ".rtcr" ? 1 : 0;
  }
  EXPECT_LE(files, 2u);
  EXPECT_GE(cache.stats().evictions, 2u);
}

// ------------------------------------------------------- CampaignService

TEST(CampaignService, SecondRequestIsAllHitsAndBitIdentical) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const auto specs = family_grid(/*runs=*/2, /*seed=*/5566);
  ServiceConfig cfg;
  cfg.cache = CacheConfig{scratch_dir("svc_repeat")};
  cfg.threads = 2;
  CampaignService svc(runner, cfg);

  const auto cold = svc.run_grid(specs);
  EXPECT_EQ(svc.last_request().specs, specs.size());
  EXPECT_EQ(svc.last_request().cache_hits, 0u);

  const auto warm = svc.run_grid(specs);
  EXPECT_EQ(svc.last_request().cache_hits, specs.size());
  EXPECT_EQ(grid_bytes(warm), grid_bytes(cold));
  EXPECT_EQ(svc.cache_stats().hits, specs.size());
  EXPECT_EQ(svc.cache_stats().misses, specs.size());
}

TEST(CampaignService, PartialOverlapRunsOnlyTheMisses) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  ServiceConfig cfg;
  cfg.cache = CacheConfig{scratch_dir("svc_partial")};
  CampaignService svc(runner, cfg);

  const std::vector<CampaignSpec> first{small_spec("a", 1),
                                        small_spec("b", 2)};
  (void)svc.run_grid(first);
  const std::vector<CampaignSpec> second{small_spec("b", 2),
                                         small_spec("c", 3)};
  const auto results = svc.run_grid(second);
  EXPECT_EQ(svc.last_request().cache_hits, 1u);
  ASSERT_EQ(results.size(), 2u);
  // Order follows the request, hit or miss.
  EXPECT_EQ(results[0].spec.name, "b");
  EXPECT_EQ(results[1].spec.name, "c");
  EXPECT_EQ(experiments::serialize_campaign_result(results[1]),
            experiments::serialize_campaign_result(
                runner.run(small_spec("c", 3))));
}

TEST(CampaignService, ShardedCacheEntriesMatchInProcessEntries) {
  // The same grid, cached once via the in-process path and once via forked
  // workers, produces byte-identical cache files — the cache is execution-
  // path agnostic, so mixed fleets can share one cache dir.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const auto specs = family_grid(/*runs=*/2, /*seed=*/7788);

  ServiceConfig in_proc;
  in_proc.cache = CacheConfig{scratch_dir("svc_inproc")};
  CampaignService a(runner, in_proc);
  (void)a.run_grid(specs);

  ServiceConfig forked;
  forked.cache = CacheConfig{scratch_dir("svc_forked")};
  forked.workers = 3;
  CampaignService b(runner, forked);
  (void)b.run_grid(specs);
  EXPECT_EQ(b.shard_stats().workers, 3u);

  for (const auto& spec : specs) {
    std::ifstream fa(a.cache()->entry_path(spec), std::ios::binary);
    std::ifstream fb(b.cache()->entry_path(spec), std::ios::binary);
    ASSERT_TRUE(fa.good() && fb.good()) << spec.name;
    const std::string ba(std::istreambuf_iterator<char>(fa), {});
    const std::string bb(std::istreambuf_iterator<char>(fb), {});
    EXPECT_EQ(ba, bb) << spec.name;
  }
}

TEST(CampaignService, ExecutorPlugsIntoDefenseGrid) {
  // The GridExecutor hook: a defense grid routed through a cached service
  // equals the plain in-process grid, and a second routed run is all hits.
  LoopConfig loop;
  experiments::DefenseGridConfig cfg;
  cfg.scenarios = {"DS-1"};
  cfg.monitors = {"", "innovation-gate"};
  cfg.modes = {AttackMode::kNoSh, AttackMode::kGolden};
  cfg.runs = 2;
  cfg.threads = 1;
  const auto plain = experiments::run_defense_grid(cfg, loop, {});

  CampaignRunner runner(loop, {});
  ServiceConfig svc_cfg;
  svc_cfg.cache = CacheConfig{scratch_dir("svc_grid")};
  CampaignService svc(runner, svc_cfg);
  cfg.executor = svc.executor();
  const auto routed = experiments::run_defense_grid(cfg, loop, {});
  const auto again = experiments::run_defense_grid(cfg, loop, {});
  EXPECT_EQ(svc.last_request().cache_hits, svc.last_request().specs);

  ASSERT_EQ(routed.cells.size(), plain.cells.size());
  for (std::size_t i = 0; i < plain.cells.size(); ++i) {
    EXPECT_EQ(routed.cells[i].campaign, plain.cells[i].campaign);
    EXPECT_EQ(routed.cells[i].detected, plain.cells[i].detected);
    EXPECT_EQ(routed.cells[i].triggered, plain.cells[i].triggered);
    EXPECT_DOUBLE_EQ(routed.cells[i].detection_rate,
                     plain.cells[i].detection_rate);
    EXPECT_EQ(again.cells[i].detected, plain.cells[i].detected);
  }
}

}  // namespace
}  // namespace rt::service
