#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include "experiments/campaign_serde.hpp"

namespace rt::experiments {
namespace {

std::uint64_t bits_of(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

/// Bitwise double compare: distinguishes -0.0 from 0.0 and is NaN-stable,
/// which EXPECT_DOUBLE_EQ is not. The serde contract is bit-exactness.
#define EXPECT_BITEQ(a, b) EXPECT_EQ(bits_of(a), bits_of(b))

/// A spec exercising every optional feature: explicit params, a monitor
/// stack, and a name with grid-sweep punctuation.
CampaignSpec gnarly_spec() {
  CampaignSpec spec;
  spec.name = "cut-in-Move_In-RwoSH-target_speed_kph=27.5";
  spec.scenario = "cut-in";
  spec.vector = core::AttackVector::kMoveIn;
  spec.mode = AttackMode::kNoSh;
  spec.runs = 3;
  spec.seed = 0xfedcba9876543210ull;
  spec.params = sim::ScenarioParams{};
  spec.monitors = {"innovation-gate", "kinematics"};
  return spec;
}

/// A run result with adversarial values in every field family: negative
/// zero, NaN, infinities, denormals, and strings containing the format's
/// own metacharacters (newlines, spaces, colons, digits).
RunResult gnarly_run() {
  RunResult run;
  run.eb = true;
  run.eb_episodes = 3;
  run.crash = true;
  run.collision = false;
  run.min_delta = -0.0;
  run.min_delta_since_attack = std::numeric_limits<double>::quiet_NaN();
  run.end_time = std::numeric_limits<double>::infinity();
  run.halted_early = true;
  run.attack.triggered = true;
  run.attack.triggers = 2;
  run.attack.vector = core::AttackVector::kDisappear;
  run.attack.start_time = 5e-324;  // smallest denormal
  run.attack.delta_at_launch = -std::numeric_limits<double>::infinity();
  run.attack.v_rel_at_launch = {1.5, -2.5};
  run.attack.a_rel_at_launch = {-0.0, 0.0};
  run.attack.predicted_delta = 13.25;
  run.attack.planned_k = 48;
  run.attack.frames_perturbed = 17;
  run.attack.k_prime = -1;
  run.attack.omega_target = 0.123456789012345678;
  run.attack.victim_cls = sim::ActorType::kPedestrian;
  run.attack.victim_truth_id = 7;
  run.ids_flagged = true;
  run.ids_reason = "jump of 3.2m\nat t=4.5 : id 7, conf 0.99";
  run.defense.flagged = true;
  run.defense.first_alert_time = 4.25;
  run.defense.first_monitor = "innovation-gate";
  run.defense.monitors.push_back(
      {"innovation-gate", true, 4.25, 3, "17:apples\n2 innovations > gate"});
  run.defense.monitors.push_back({"kinematics", false, -1.0, 0, ""});
  run.defense.detected = true;
  run.defense.frames_to_detection = 9;
  run.defense.detected_by = "innovation-gate";
  run.timeline.push_back({0.0, 30.0, 12.0, 30.0, 13.9, false, false});
  run.timeline.push_back({0.25, -0.0, 11.5,
                          std::numeric_limits<double>::quiet_NaN(), 13.5,
                          true, true});
  return run;
}

void expect_run_equal(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.eb, b.eb);
  EXPECT_EQ(a.eb_episodes, b.eb_episodes);
  EXPECT_EQ(a.crash, b.crash);
  EXPECT_EQ(a.collision, b.collision);
  EXPECT_BITEQ(a.min_delta, b.min_delta);
  EXPECT_BITEQ(a.min_delta_since_attack, b.min_delta_since_attack);
  EXPECT_BITEQ(a.end_time, b.end_time);
  EXPECT_EQ(a.halted_early, b.halted_early);
  EXPECT_EQ(a.attack.triggered, b.attack.triggered);
  EXPECT_EQ(a.attack.triggers, b.attack.triggers);
  EXPECT_EQ(a.attack.vector, b.attack.vector);
  EXPECT_BITEQ(a.attack.start_time, b.attack.start_time);
  EXPECT_BITEQ(a.attack.delta_at_launch, b.attack.delta_at_launch);
  EXPECT_BITEQ(a.attack.v_rel_at_launch.x, b.attack.v_rel_at_launch.x);
  EXPECT_BITEQ(a.attack.v_rel_at_launch.y, b.attack.v_rel_at_launch.y);
  EXPECT_BITEQ(a.attack.a_rel_at_launch.x, b.attack.a_rel_at_launch.x);
  EXPECT_BITEQ(a.attack.a_rel_at_launch.y, b.attack.a_rel_at_launch.y);
  EXPECT_BITEQ(a.attack.predicted_delta, b.attack.predicted_delta);
  EXPECT_EQ(a.attack.planned_k, b.attack.planned_k);
  EXPECT_EQ(a.attack.frames_perturbed, b.attack.frames_perturbed);
  EXPECT_EQ(a.attack.k_prime, b.attack.k_prime);
  EXPECT_BITEQ(a.attack.omega_target, b.attack.omega_target);
  EXPECT_EQ(a.attack.victim_cls, b.attack.victim_cls);
  EXPECT_EQ(a.attack.victim_truth_id, b.attack.victim_truth_id);
  EXPECT_EQ(a.ids_flagged, b.ids_flagged);
  EXPECT_EQ(a.ids_reason, b.ids_reason);
  EXPECT_EQ(a.defense.flagged, b.defense.flagged);
  EXPECT_BITEQ(a.defense.first_alert_time, b.defense.first_alert_time);
  EXPECT_EQ(a.defense.first_monitor, b.defense.first_monitor);
  ASSERT_EQ(a.defense.monitors.size(), b.defense.monitors.size());
  for (std::size_t i = 0; i < a.defense.monitors.size(); ++i) {
    EXPECT_EQ(a.defense.monitors[i].monitor, b.defense.monitors[i].monitor);
    EXPECT_EQ(a.defense.monitors[i].fired, b.defense.monitors[i].fired);
    EXPECT_BITEQ(a.defense.monitors[i].first_alert_time,
                 b.defense.monitors[i].first_alert_time);
    EXPECT_EQ(a.defense.monitors[i].alarms, b.defense.monitors[i].alarms);
    EXPECT_EQ(a.defense.monitors[i].reason, b.defense.monitors[i].reason);
  }
  EXPECT_EQ(a.defense.detected, b.defense.detected);
  EXPECT_EQ(a.defense.frames_to_detection, b.defense.frames_to_detection);
  EXPECT_EQ(a.defense.detected_by, b.defense.detected_by);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_BITEQ(a.timeline[i].time, b.timeline[i].time);
    EXPECT_BITEQ(a.timeline[i].delta, b.timeline[i].delta);
    EXPECT_BITEQ(a.timeline[i].d_safe, b.timeline[i].d_safe);
    EXPECT_BITEQ(a.timeline[i].target_delta, b.timeline[i].target_delta);
    EXPECT_BITEQ(a.timeline[i].ego_speed, b.timeline[i].ego_speed);
    EXPECT_EQ(a.timeline[i].eb_active, b.timeline[i].eb_active);
    EXPECT_EQ(a.timeline[i].attack_active, b.timeline[i].attack_active);
  }
}

// ------------------------------------------------------------ round trips

TEST(CampaignSerde, SpecRoundTripsAllFields) {
  const CampaignSpec spec = gnarly_spec();
  const CampaignSpec back = deserialize_spec(serialize_spec(spec));
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.scenario, spec.scenario);
  EXPECT_EQ(back.vector, spec.vector);
  EXPECT_EQ(back.mode, spec.mode);
  EXPECT_EQ(back.runs, spec.runs);
  EXPECT_EQ(back.seed, spec.seed);
  ASSERT_EQ(back.params.has_value(), spec.params.has_value());
  for (const auto& name : sim::scenario_param_names()) {
    EXPECT_BITEQ(sim::get_scenario_param(*back.params, name),
                 sim::get_scenario_param(*spec.params, name))
        << name;
  }
  EXPECT_EQ(back.monitors, spec.monitors);
}

TEST(CampaignSerde, SpecWithoutParamsRoundTrips) {
  CampaignSpec spec = gnarly_spec();
  spec.params.reset();
  spec.monitors.clear();
  const CampaignSpec back = deserialize_spec(serialize_spec(spec));
  EXPECT_FALSE(back.params.has_value());
  EXPECT_TRUE(back.monitors.empty());
}

TEST(CampaignSerde, RunResultRoundTripsBitExactly) {
  const RunResult run = gnarly_run();
  const std::string text = serialize_run_result(run);
  const RunResult back = deserialize_run_result(text);
  expect_run_equal(run, back);
  // Serialization is canonical: a round trip reproduces the exact bytes.
  EXPECT_EQ(serialize_run_result(back), text);
}

TEST(CampaignSerde, CampaignResultRoundTripsBitExactly) {
  CampaignResult result;
  result.spec = gnarly_spec();
  result.runs.push_back(gnarly_run());
  result.runs.push_back(RunResult{});  // all-defaults row
  const std::string text = serialize_campaign_result(result);
  const CampaignResult back = deserialize_campaign_result(text);
  EXPECT_EQ(back.spec.name, result.spec.name);
  EXPECT_EQ(back.spec.seed, result.spec.seed);
  ASSERT_EQ(back.runs.size(), result.runs.size());
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    expect_run_equal(result.runs[i], back.runs[i]);
  }
  EXPECT_EQ(serialize_campaign_result(back), text);
  // Aggregates survive the trip (they are derived from per-run fields).
  EXPECT_EQ(back.eb_count(), result.eb_count());
  EXPECT_EQ(back.crash_count(), result.crash_count());
  EXPECT_EQ(back.detected_count(), result.detected_count());
}

// ------------------------------------------------------------ fail loudly

TEST(CampaignSerde, EveryStrictPrefixThrows) {
  CampaignResult result;
  result.spec = gnarly_spec();
  result.runs.push_back(gnarly_run());
  const std::string text = serialize_campaign_result(result);
  ASSERT_GT(text.size(), 100u);
  // Every strict prefix must throw — a truncated cache file or pipe frame
  // can never deserialize as a valid (zero-padded) result.
  for (std::size_t len = 0; len < text.size(); ++len) {
    EXPECT_THROW(deserialize_campaign_result(text.substr(0, len)),
                 SerdeError)
        << "prefix of length " << len << " deserialized";
  }
}

TEST(CampaignSerde, TrailingGarbageThrows) {
  const std::string text = serialize_run_result(gnarly_run());
  EXPECT_THROW(deserialize_run_result(text + "x"), SerdeError);
  EXPECT_THROW(deserialize_run_result(text + "\nend\n"), SerdeError);
  const std::string spec_text = serialize_spec(gnarly_spec());
  EXPECT_THROW(deserialize_spec(spec_text + " "), SerdeError);
}

TEST(CampaignSerde, VersionMismatchThrows) {
  std::string text = serialize_run_result(gnarly_run());
  const std::string ver = std::to_string(kCampaignSerdeVersion);
  const std::size_t pos = text.find(ver);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, ver.size(), std::to_string(kCampaignSerdeVersion + 1));
  EXPECT_THROW(deserialize_run_result(text), SerdeError);
}

TEST(CampaignSerde, WrongMagicAndCorruptFieldsThrow) {
  const std::string run_text = serialize_run_result(gnarly_run());
  // A spec payload handed to the run reader (and vice versa) is rejected
  // by the magic, not misparsed.
  EXPECT_THROW(deserialize_run_result(serialize_spec(gnarly_spec())),
               SerdeError);
  EXPECT_THROW(deserialize_spec(run_text), SerdeError);
  // Flipping a double's encoding marker breaks the parse loudly (doubles
  // are newline-separated `d<16 hex>` tokens).
  std::string bad = run_text;
  const std::size_t dpos = bad.find("\nd");
  ASSERT_NE(dpos, std::string::npos);
  bad[dpos + 1] = 'q';
  EXPECT_THROW(deserialize_run_result(bad), SerdeError);
  EXPECT_THROW(deserialize_run_result(""), SerdeError);
}

TEST(CampaignSerde, OutOfRangeEnumsThrow) {
  // Serialized enums carry their numeric value; a value outside the enum's
  // range (e.g. from a future schema) must throw, not cast blindly. The
  // spec body is line-oriented: magic, version, "spec", name, scenario,
  // then the attack-vector value.
  const std::string text = serialize_spec(gnarly_spec());
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      lines.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  ASSERT_GT(lines.size(), 6u);
  ASSERT_EQ(lines[2], "spec");
  lines[5] = "9";  // vector enum has values 0..2
  std::string tampered;
  for (const auto& line : lines) {
    tampered += line;
    tampered += '\n';
  }
  tampered.pop_back();
  EXPECT_THROW(deserialize_spec(tampered), SerdeError);
}

}  // namespace
}  // namespace rt::experiments
