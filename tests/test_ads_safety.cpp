#include <gtest/gtest.h>

#include "ads/ads_system.hpp"
#include "ads/pid.hpp"
#include "ads/planner.hpp"
#include "ads/prediction.hpp"
#include "perception/detector_model.hpp"
#include "safety/ids.hpp"
#include "safety/safety_model.hpp"
#include "safety/safety_monitor.hpp"

namespace rt {
namespace {

perception::FusedObject make_fused(int id, double x, double y,
                                   sim::ActorType cls, double vx = 0.0,
                                   double vy = 0.0, int hits = 20,
                                   bool lidar = true) {
  perception::FusedObject o;
  o.id = id;
  o.cls = cls;
  o.rel_position = {x, y};
  o.rel_velocity = {vx, vy};
  o.camera_hits = hits;
  o.lidar_corroborated = lidar;
  o.lidar_expected = true;
  return o;
}

ads::WorldModel make_world(double ego_speed,
                           std::vector<perception::FusedObject> objs) {
  ads::WorldModel w;
  w.ego_speed = ego_speed;
  w.objects = std::move(objs);
  return w;
}

// ------------------------------------------------------------- prediction

TEST(Prediction, CorridorPredicates) {
  const double ego_w = 1.8;
  auto in_lane = make_fused(1, 30.0, 0.0, sim::ActorType::kVehicle);
  EXPECT_TRUE(ads::Prediction::in_corridor_now(in_lane, ego_w));
  auto parked = make_fused(2, 30.0, -3.0, sim::ActorType::kVehicle);
  EXPECT_FALSE(ads::Prediction::in_corridor_now(parked, ego_w));
}

TEST(Prediction, EntryCappedByTimeToReach) {
  const double ego_w = 1.8;
  // Drifting toward the lane at 1 m/s from y=-3, but only 6 m ahead of an
  // EV doing 12 m/s: passed in 0.5 s, cannot become a threat.
  auto drifting =
      make_fused(1, 6.0, -3.0, sim::ActorType::kVehicle, -12.0, 1.0);
  EXPECT_FALSE(
      ads::Prediction::enters_corridor_within(drifting, ego_w, 1.5, 12.0));
  // Same object far ahead: full horizon applies; 1.5 m/s for 1.5 s from
  // -2.5 reaches the corridor.
  auto far = make_fused(2, 60.0, -2.5, sim::ActorType::kVehicle, -5.0, 1.5);
  EXPECT_TRUE(ads::Prediction::enters_corridor_within(far, ego_w, 1.5, 12.0));
}

TEST(Prediction, PedestrianPredicates) {
  const double ego_w = 1.8;
  auto crossing =
      make_fused(1, 40.0, -4.0, sim::ActorType::kPedestrian, -12.0, 1.2);
  EXPECT_TRUE(ads::Prediction::pedestrian_on_road(crossing));
  EXPECT_TRUE(ads::Prediction::pedestrian_crossing(crossing, ego_w));
  EXPECT_FALSE(ads::Prediction::pedestrian_receding(crossing));
  auto leaving =
      make_fused(2, 40.0, -4.0, sim::ActorType::kPedestrian, -12.0, -1.2);
  EXPECT_FALSE(ads::Prediction::pedestrian_crossing(leaving, ego_w));
  EXPECT_TRUE(ads::Prediction::pedestrian_receding(leaving));
  auto sidewalk =
      make_fused(3, 40.0, -6.5, sim::ActorType::kPedestrian, -12.0, 1.2);
  EXPECT_FALSE(ads::Prediction::pedestrian_on_road(sidewalk));
}

// ----------------------------------------------------------------- planner

TEST(Planner, CruisesTowardTargetSpeed) {
  ads::LongitudinalPlanner planner;
  const auto out = planner.plan(make_world(8.0, {}), 1.8, 4.6);
  EXPECT_GT(out.accel_command, 0.5);
  EXPECT_FALSE(out.eb_active);
}

TEST(Planner, BrakesForInLaneLead) {
  ads::LongitudinalPlanner planner;
  // Slow lead 15 m ahead while EV does 12.5.
  const auto lead =
      make_fused(1, 15.0, 0.0, sim::ActorType::kVehicle, -5.6, 0.0);
  const auto out = planner.plan(make_world(12.5, {lead}), 1.8, 4.6);
  EXPECT_LT(out.accel_command, -1.0);
  EXPECT_TRUE(out.lead_id.has_value());
}

TEST(Planner, IgnoresParkedVehicleOutsideCorridor) {
  ads::LongitudinalPlanner planner;
  const auto parked =
      make_fused(1, 30.0, -3.0, sim::ActorType::kVehicle, -10.0, 0.0);
  const auto out = planner.plan(make_world(10.0, {parked}), 1.8, 4.6);
  EXPECT_GT(out.accel_command, 0.0);
  EXPECT_FALSE(out.lead_id.has_value());
}

TEST(Planner, CutInTriggersEmergencyBraking) {
  ads::LongitudinalPlanner planner;
  const auto outside =
      make_fused(1, 30.0, -2.5, sim::ActorType::kVehicle, -12.5, 0.0);
  for (int i = 0; i < 5; ++i) {
    (void)planner.plan(make_world(12.5, {outside}), 1.8, 4.6);
  }
  // The same object suddenly inside the corridor, close ahead.
  const auto inside =
      make_fused(1, 28.0, 0.0, sim::ActorType::kVehicle, -12.5, 0.0);
  const auto out = planner.plan(make_world(12.5, {inside}), 1.8, 4.6);
  EXPECT_TRUE(out.eb_active);
  EXPECT_LT(out.accel_command, -5.0);
}

TEST(Planner, MaterializedObjectTriggersEmergencyBraking) {
  ads::LongitudinalPlanner planner;
  (void)planner.plan(make_world(12.5, {}), 1.8, 4.6);
  // A brand-new fused id already in the corridor at 20 m (the Disappear /
  // Move_Out reappearance signature).
  const auto ghost =
      make_fused(7, 20.0, 0.0, sim::ActorType::kVehicle, -12.5, 0.0);
  const auto out = planner.plan(make_world(12.5, {ghost}), 1.8, 4.6);
  EXPECT_TRUE(out.eb_active);
}

TEST(Planner, NoEbWhenSlow) {
  ads::LongitudinalPlanner planner;
  (void)planner.plan(make_world(3.0, {}), 1.8, 4.6);
  const auto ghost =
      make_fused(7, 14.0, 0.0, sim::ActorType::kPedestrian, -3.0, 0.0);
  const auto out = planner.plan(make_world(3.0, {ghost}), 1.8, 4.6);
  EXPECT_FALSE(out.eb_active);  // cut-in reflex requires speed
}

TEST(Planner, YieldsToCommittedCrossingPedestrian) {
  ads::LongitudinalPlanner planner;
  const auto crossing =
      make_fused(1, 45.0, -3.5, sim::ActorType::kPedestrian, -12.5, 1.2);
  ads::PlanOutput out;
  for (int i = 0; i < 5; ++i) {
    out = planner.plan(make_world(12.5, {crossing}), 1.8, 4.6);
  }
  EXPECT_TRUE(out.lead_id.has_value());
  EXPECT_LT(out.accel_command, 0.0);
}

TEST(Planner, PedCautionCapsSpeed) {
  ads::LongitudinalPlanner planner;
  // Standing pedestrian on the road edge, not crossing: no stop target,
  // but the caution cap requests deceleration above the cap speed.
  const auto standing =
      make_fused(1, 30.0, -3.0, sim::ActorType::kPedestrian, -12.5, 0.0);
  const auto out = planner.plan(make_world(12.5, {standing}), 1.8, 4.6);
  EXPECT_LT(out.accel_command, 0.0);
  EXPECT_FALSE(out.eb_active);
}

// --------------------------------------------------------------------- pid

TEST(Pid, ConvergesStepResponse) {
  ads::PidController pid({1.0, 2.0, 0.0}, -10.0, 10.0);
  double y = 0.0;
  for (int i = 0; i < 300; ++i) {
    const double u = pid.step(1.0 - y, 0.01);
    y += 0.05 * (u - y);  // simple first-order plant
  }
  EXPECT_NEAR(y, 1.0, 0.05);
}

TEST(Pid, OutputClampedWithAntiWindup) {
  ads::PidController pid({10.0, 10.0, 0.0}, -1.0, 1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(pid.step(100.0, 0.01), 1.0);
  }
  // Integrator did not wind up into the saturation.
  EXPECT_LT(pid.integral(), 1.0);
  pid.reset();
  EXPECT_DOUBLE_EQ(pid.integral(), 0.0);
}

// ------------------------------------------------------------ safety model

TEST(SafetyModel, StoppingDistanceAndDelta) {
  safety::SafetyModel model;  // comfort 3.5
  EXPECT_NEAR(model.stopping_distance(12.5), 12.5 * 12.5 / 7.0, 1e-9);
  EXPECT_NEAR(model.delta(30.0, 12.5), 30.0 - 12.5 * 12.5 / 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(model.stopping_distance(0.0), 0.0);
}

TEST(SafetyModel, AssessWorld) {
  sim::EgoVehicle ego(0.0, 10.0);
  std::vector<sim::Actor> actors;
  actors.emplace_back(1, sim::ActorType::kVehicle, math::Vec2{30.0, 0.0});
  sim::World world(ego, std::move(actors));
  safety::SafetyModel model;
  const auto a = model.assess(world);
  EXPECT_NEAR(a.d_safe, 30.0 - 4.6, 1e-9);
  ASSERT_TRUE(a.bounding_object.has_value());
  EXPECT_EQ(*a.bounding_object, 1);
  EXPECT_NEAR(a.delta, a.d_safe - 100.0 / 7.0, 1e-9);
}

TEST(SafetyModel, ClearPath) {
  sim::World world(sim::EgoVehicle(0.0, 10.0), {});
  safety::SafetyModel model;
  const auto a = model.assess(world);
  EXPECT_DOUBLE_EQ(a.d_safe, model.config().clear_path_dsafe);
  EXPECT_FALSE(a.bounding_object.has_value());
}

TEST(SafetyMonitor, TracksMinimaAndEpisodes) {
  sim::World world(sim::EgoVehicle(0.0, 12.0), {});
  safety::SafetyMonitor mon(safety::SafetyModel{}, true);
  mon.record(world, false, false);
  mon.record(world, true, false);   // EB episode 1
  mon.record(world, true, true);    // attack begins
  mon.record(world, false, false);
  mon.record(world, true, false);   // EB episode 2
  EXPECT_TRUE(mon.emergency_braking_occurred());
  EXPECT_EQ(mon.eb_episodes(), 2);
  EXPECT_TRUE(mon.attack_observed());
  EXPECT_EQ(mon.timeline().size(), 5u);
  EXPECT_FALSE(mon.accident());  // clear path: delta large
}

TEST(SafetyMonitor, AccidentLabel) {
  // EV at speed right behind an in-path object: delta < 4.
  sim::EgoVehicle ego(0.0, 12.0);
  std::vector<sim::Actor> actors;
  actors.emplace_back(1, sim::ActorType::kVehicle, math::Vec2{15.0, 0.0});
  sim::World world(ego, std::move(actors));
  safety::SafetyMonitor mon;
  mon.record(world, false, true);
  EXPECT_TRUE(mon.accident());
  EXPECT_LT(mon.min_delta_since_attack(), 4.0);
}

// -------------------------------------------------------------------- ids

TEST(Ids, SilentOnNominalTraffic) {
  perception::CameraModel cam;
  safety::AttackIds ids(safety::IdsConfig{},
                        perception::DetectorNoiseModel::paper_defaults(), cam);
  perception::MotTracker mot(1.0 / 15.0);
  perception::DetectorModel det(
      cam, perception::DetectorNoiseModel::paper_defaults(), stats::Rng(21));
  sim::GroundTruthObject obj;
  obj.id = 1;
  obj.type = sim::ActorType::kVehicle;
  obj.dims = sim::default_dimensions(obj.type);
  obj.rel_position = {30.0, 0.0};
  for (int f = 0; f < 400; ++f) {
    const auto frame = det.detect({obj}, f / 15.0);
    const auto tracks = mot.update(frame);
    ids.observe(frame, tracks, {});
  }
  EXPECT_FALSE(ids.report().flagged);
}

TEST(Ids, FlagsLongCameraAbsenceWithLidarEvidence) {
  perception::CameraModel cam;
  safety::IdsConfig cfg;
  cfg.absence_p99_mult = 0.5;  // threshold ~29 frames
  safety::AttackIds ids(cfg,
                        perception::DetectorNoiseModel::paper_defaults(), cam);
  perception::LidarTrack l;
  l.track_id = 1;
  l.rel_position = {25.0, 0.0};
  l.hits = 50;
  perception::CameraFrame empty;
  for (int f = 0; f < 60; ++f) {
    ids.observe(empty, {}, {l});
  }
  EXPECT_TRUE(ids.report().flagged);
  EXPECT_GT(ids.report().absence_alarms, 0);
}

}  // namespace
}  // namespace rt
