#include <gtest/gtest.h>

#include <algorithm>

#include "perception/camera_model.hpp"
#include "perception/detector_model.hpp"
#include "perception/fusion.hpp"
#include "perception/hungarian.hpp"
#include "perception/kalman_filter.hpp"
#include "stats/hash.hpp"
#include "perception/lidar_model.hpp"
#include "perception/lidar_tracker.hpp"
#include "perception/mot_tracker.hpp"
#include "perception/perception_system.hpp"
#include "perception/track_projection.hpp"

namespace rt::perception {
namespace {

sim::GroundTruthObject make_object(double x, double y, sim::ActorType type) {
  sim::GroundTruthObject g;
  g.id = 1;
  g.type = type;
  g.dims = sim::default_dimensions(type);
  g.rel_position = {x, y};
  return g;
}

// ---------------------------------------------------------------- camera

class CameraRoundTripTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CameraRoundTripTest, ProjectBackProject) {
  const auto [x, y] = GetParam();
  CameraModel cam;
  const auto obj = make_object(x, y, sim::ActorType::kVehicle);
  const auto box = cam.project(obj);
  ASSERT_TRUE(box.has_value());
  const auto pos = cam.back_project(*box);
  ASSERT_TRUE(pos.has_value());
  EXPECT_NEAR(pos->x, x, 1e-6);
  EXPECT_NEAR(pos->y, y, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CameraRoundTripTest,
    ::testing::Values(std::tuple{10.0, 0.0}, std::tuple{30.0, -3.0},
                      std::tuple{60.0, 3.7}, std::tuple{100.0, -6.0},
                      std::tuple{15.0, 2.0}));

TEST(CameraModel, FrustumLimits) {
  CameraModel cam;
  EXPECT_FALSE(cam.project(make_object(1.0, 0.0, sim::ActorType::kVehicle)));
  EXPECT_FALSE(
      cam.project(make_object(200.0, 0.0, sim::ActorType::kVehicle)));
  // Far to the side: out of the image.
  EXPECT_FALSE(
      cam.project(make_object(10.0, 30.0, sim::ActorType::kVehicle)));
}

TEST(CameraModel, SizeScalesInverselyWithRange) {
  CameraModel cam;
  const auto near = cam.project(make_object(20.0, 0.0, sim::ActorType::kVehicle));
  const auto far = cam.project(make_object(40.0, 0.0, sim::ActorType::kVehicle));
  ASSERT_TRUE(near && far);
  EXPECT_NEAR(near->w / far->w, 2.0, 1e-9);
}

TEST(CameraModel, LateralConversionInverse) {
  CameraModel cam;
  const double px = cam.lateral_m_to_px(1.5, 30.0);
  EXPECT_NEAR(cam.lateral_px_to_m(px, 30.0), 1.5, 1e-12);
  // Leftward (positive y) means smaller u.
  EXPECT_LT(px, 0.0);
}

TEST(CameraModel, BackProjectAboveHorizonFails) {
  CameraModel cam;
  // A bbox whose bottom edge is above the image center cannot be grounded.
  const math::Bbox floating{960.0, 100.0, 50.0, 50.0};
  EXPECT_FALSE(cam.back_project(floating).has_value());
}

// -------------------------------------------------------------- detector

TEST(DetectorModel, DetectsVisibleObjects) {
  DetectorModel det(CameraModel{}, DetectorNoiseModel::paper_defaults(),
                    stats::Rng(1));
  std::vector<sim::GroundTruthObject> objs{
      make_object(30.0, 0.0, sim::ActorType::kVehicle)};
  int detected = 0;
  for (int f = 0; f < 300; ++f) {
    detected += static_cast<int>(!det.detect(objs, f / 15.0).detections.empty());
  }
  // Most frames produce a detection; streaks cause the rest.
  EXPECT_GT(detected, 240);
  EXPECT_LT(detected, 300);
}

TEST(DetectorModel, MisdetectionStreaksAreConsecutive) {
  DetectorModel det(CameraModel{}, DetectorNoiseModel::paper_defaults(),
                    stats::Rng(3));
  std::vector<sim::GroundTruthObject> objs{
      make_object(30.0, 0.0, sim::ActorType::kPedestrian)};
  // Count streak structure: once in a streak, in_streak holds until over.
  int streak_frames = 0;
  for (int f = 0; f < 2000; ++f) {
    (void)det.detect(objs, f / 15.0);
    if (det.in_streak(1)) ++streak_frames;
  }
  EXPECT_GT(streak_frames, 0);
}

TEST(DetectorModel, CenterErrorRoughlyMatchesPopulationSigma) {
  CameraModel cam;
  DetectorModel det(cam, DetectorNoiseModel::paper_defaults(),
                    stats::Rng(17));
  const auto obj = make_object(25.0, 0.0, sim::ActorType::kVehicle);
  const auto truth = cam.project(obj);
  std::vector<double> deltas;
  for (int f = 0; f < 6000; ++f) {
    const auto frame = det.detect({obj}, f / 15.0);
    if (frame.detections.empty()) continue;
    const auto& b = frame.detections[0].bbox;
    if (math::iou(b, *truth) <= 0.0) continue;
    deltas.push_back((b.cx - truth->cx) / truth->w);
  }
  const auto fit = stats::fit_normal(deltas);
  // Overlap-conditioning (IoU > 0, as in the paper's protocol) removes most
  // wide-component samples, so the measured sigma sits well below the
  // configured population sigma but well above the core sigma.
  EXPECT_GT(fit.sigma, 0.08);
  EXPECT_LT(fit.sigma, 0.30);
  EXPECT_NEAR(fit.mu, 0.023, 0.08);
}

// -------------------------------------------------------------- hungarian

AssignmentResult brute_force(const math::Matrix& cost) {
  std::vector<int> cols(cost.cols());
  for (std::size_t i = 0; i < cols.size(); ++i) cols[i] = static_cast<int>(i);
  AssignmentResult best;
  best.total_cost = 1e18;
  std::vector<int> perm = cols;
  std::sort(perm.begin(), perm.end());
  do {
    double total = 0.0;
    for (std::size_t r = 0; r < cost.rows() && r < perm.size(); ++r) {
      total += cost(r, static_cast<std::size_t>(perm[r]));
    }
    if (total < best.total_cost) {
      best.total_cost = total;
      best.assignment.assign(perm.begin(),
                             perm.begin() + static_cast<long>(cost.rows()));
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

class HungarianRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(HungarianRandomTest, MatchesBruteForceOptimum) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam() % 5);
  math::Matrix cost(n, n);
  for (auto& v : cost.data()) v = rng.uniform(0.0, 10.0);
  const auto fast = solve_assignment(cost);
  const auto slow = brute_force(cost);
  EXPECT_NEAR(fast.total_cost, slow.total_cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianRandomTest, ::testing::Range(0, 20));

TEST(Hungarian, RectangularMoreRowsThanCols) {
  math::Matrix cost{{1.0}, {0.5}, {2.0}};
  const auto res = solve_assignment(cost);
  // Only one column: exactly one row assigned, the cheapest.
  int assigned = 0;
  for (std::size_t r = 0; r < 3; ++r) {
    if (res.assignment[r] >= 0) {
      ++assigned;
      EXPECT_EQ(r, 1u);
    }
  }
  EXPECT_EQ(assigned, 1);
  EXPECT_NEAR(res.total_cost, 0.5, 1e-12);
}

TEST(Hungarian, EmptyInputs) {
  EXPECT_TRUE(solve_assignment(math::Matrix(0, 0)).assignment.empty());
  const auto res = solve_assignment(math::Matrix(2, 0));
  EXPECT_EQ(res.assignment.size(), 2u);
  EXPECT_EQ(res.assignment[0], -1);
}

// ---------------------------------------------------------------- kalman

TEST(KalmanFilter, ConvergesOnConstantVelocityTarget) {
  const double dt = 0.1;
  math::Matrix f{{1.0, dt}, {0.0, 1.0}};
  math::Matrix q{{0.01, 0.0}, {0.0, 0.01}};
  math::Matrix h{{1.0, 0.0}};
  math::Matrix r{{1.0}};
  math::Matrix x0{{0.0}, {0.0}};
  math::Matrix p0{{10.0, 0.0}, {0.0, 10.0}};
  KalmanFilter kf(f, q, h, r, x0, p0);

  stats::Rng rng(5);
  double pos = 0.0;
  const double vel = 3.0;
  for (int i = 0; i < 300; ++i) {
    pos += vel * dt;
    kf.predict();
    math::Matrix z{{pos + rng.normal(0.0, 1.0)}};
    kf.update(z);
  }
  EXPECT_NEAR(kf.state()(1, 0), vel, 0.4);
  EXPECT_NEAR(kf.state()(0, 0), pos, 1.5);
}

TEST(KalmanFilter, MahalanobisGrowsWithInnovation) {
  math::Matrix f = math::Matrix::identity(1);
  math::Matrix q{{0.1}};
  math::Matrix h{{1.0}};
  math::Matrix r{{1.0}};
  KalmanFilter kf(f, q, h, r, math::Matrix{{0.0}}, math::Matrix{{1.0}});
  EXPECT_LT(kf.mahalanobis2(math::Matrix{{0.5}}),
            kf.mahalanobis2(math::Matrix{{5.0}}));
}

TEST(KalmanFilter, DimensionValidation) {
  EXPECT_THROW(KalmanFilter(math::Matrix(2, 2), math::Matrix(3, 3),
                            math::Matrix(1, 2), math::Matrix(1, 1),
                            math::Matrix(2, 1), math::Matrix(2, 2)),
               std::invalid_argument);
}

// ------------------------------------------------------------------- MOT

Detection make_detection(double cx, double cy, double w, double h,
                         sim::ActorType cls = sim::ActorType::kVehicle) {
  Detection d;
  d.bbox = {cx, cy, w, h};
  d.cls = cls;
  return d;
}

TEST(MotTracker, TracksAcrossFramesWithStableId) {
  MotTracker mot(1.0 / 15.0);
  std::vector<TrackView> tracks;
  for (int f = 0; f < 10; ++f) {
    CameraFrame frame;
    frame.detections.push_back(
        make_detection(100.0 + 2.0 * f, 200.0, 50.0, 40.0));
    tracks = mot.update(frame);
  }
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].track_id, 1);
  EXPECT_GE(tracks[0].hits, 9);
  EXPECT_NEAR(tracks[0].bbox.cx, 118.0, 6.0);
  // Velocity locked onto ~2 px/frame = 30 px/s.
  EXPECT_NEAR(tracks[0].vu, 30.0, 12.0);
}

TEST(MotTracker, ConfirmationRequiresMinHits) {
  MotTracker mot(1.0 / 15.0);
  CameraFrame frame;
  frame.detections.push_back(make_detection(100.0, 100.0, 40.0, 40.0));
  EXPECT_TRUE(mot.update(frame).empty());   // first hit: unconfirmed
  EXPECT_FALSE(mot.update(frame).empty());  // second hit: confirmed
}

TEST(MotTracker, DropsTrackAfterMaxMisses) {
  MotConfig cfg;
  cfg.max_misses = 3;
  MotTracker mot(1.0 / 15.0, cfg);
  CameraFrame frame;
  frame.detections.push_back(make_detection(100.0, 100.0, 40.0, 40.0));
  mot.update(frame);
  mot.update(frame);
  EXPECT_EQ(mot.live_track_count(), 1u);
  CameraFrame empty;
  for (int i = 0; i < 4; ++i) mot.update(empty);
  EXPECT_EQ(mot.live_track_count(), 0u);
}

TEST(MotTracker, ClassConsistencyInAssociation) {
  MotTracker mot(1.0 / 15.0);
  CameraFrame veh;
  veh.detections.push_back(make_detection(100.0, 100.0, 40.0, 40.0));
  mot.update(veh);
  mot.update(veh);
  CameraFrame ped;
  ped.detections.push_back(
      make_detection(100.0, 100.0, 40.0, 40.0, sim::ActorType::kPedestrian));
  mot.update(ped);
  // Same position but different class: a second track is born.
  EXPECT_EQ(mot.live_track_count(), 2u);
}

TEST(MotTracker, InnovationGateRejectsOutliers) {
  MotTracker mot(1.0 / 15.0);
  CameraFrame frame;
  frame.detections.push_back(make_detection(100.0, 100.0, 40.0, 40.0));
  for (int i = 0; i < 5; ++i) mot.update(frame);
  // An outlier jump far beyond the characterized noise: must not drag the
  // track (it spawns a new one or is dropped).
  CameraFrame outlier;
  outlier.detections.push_back(make_detection(100.0, 160.0, 40.0, 40.0));
  mot.update(outlier);
  const auto t = mot.track(1);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(t->bbox.cy, 100.0, 5.0);
}

TEST(MotTracker, PredictNextBbox) {
  MotTracker mot(1.0 / 15.0);
  CameraFrame frame;
  for (int f = 0; f < 8; ++f) {
    frame.detections.clear();
    frame.detections.push_back(
        make_detection(100.0 + 3.0 * f, 100.0, 40.0, 40.0));
    mot.update(frame);
  }
  const auto pred = mot.predict_next_bbox(1);
  ASSERT_TRUE(pred.has_value());
  EXPECT_GT(pred->cx, 118.0);  // ahead of the last update
  EXPECT_FALSE(mot.predict_next_bbox(99).has_value());
}

// ----------------------------------------------------------------- lidar

TEST(LidarModel, ClassDependentRange) {
  LidarModel lidar(LidarConfig{}, stats::Rng(2));
  const auto far_vehicle = make_object(70.0, 0.0, sim::ActorType::kVehicle);
  auto far_ped = make_object(70.0, 0.0, sim::ActorType::kPedestrian);
  far_ped.id = 2;
  int veh_hits = 0;
  int ped_hits = 0;
  for (int i = 0; i < 200; ++i) {
    for (const auto& m : lidar.scan({far_vehicle, far_ped})) {
      if (m.truth_id == 1) ++veh_hits;
      if (m.truth_id == 2) ++ped_hits;
    }
  }
  // 70 m: inside vehicle range (80), far outside pedestrian range (35).
  EXPECT_GT(veh_hits, 150);
  EXPECT_EQ(ped_hits, 0);
}

TEST(LidarModel, PointCountFallsWithRange) {
  LidarModel lidar(LidarConfig{}, stats::Rng(4));
  const auto near = lidar.scan({make_object(10.0, 0.0, sim::ActorType::kVehicle)});
  const auto far = lidar.scan({make_object(60.0, 0.0, sim::ActorType::kVehicle)});
  ASSERT_FALSE(near.empty());
  ASSERT_FALSE(far.empty());
  EXPECT_GT(near[0].point_count, far[0].point_count);
}

TEST(LidarTracker, TracksAndEstimatesVelocity) {
  LidarTracker tracker(0.1);
  for (int i = 0; i < 30; ++i) {
    LidarMeasurement m;
    m.rel_position = {20.0 - 0.5 * i, 0.0};  // approaching at 5 m/s
    tracker.update({m});
  }
  ASSERT_EQ(tracker.tracks().size(), 1u);
  EXPECT_NEAR(tracker.tracks()[0].rel_velocity.x, -5.0, 1.0);
}

TEST(LidarTracker, DropsSilentTracks) {
  LidarTracker tracker(0.1);
  LidarMeasurement m;
  m.rel_position = {20.0, 0.0};
  tracker.update({m});
  for (int i = 0; i < 5; ++i) tracker.update({});
  EXPECT_TRUE(tracker.tracks().empty());
}

// ---------------------------------------------------------------- fusion

WorldTrack make_world_track(int id, double x, double y, sim::ActorType cls,
                            int hits) {
  WorldTrack w;
  w.track_id = id;
  w.cls = cls;
  w.rel_position = {x, y};
  w.hits = hits;
  return w;
}

LidarTrack make_lidar_track(int id, double x, double y) {
  LidarTrack l;
  l.track_id = id;
  l.rel_position = {x, y};
  l.hits = 5;
  return l;
}

TEST(Fusion, PairedPublishesQuicklyWithBlendedPosition) {
  Fusion fusion(FusionConfig{}, LidarConfig{}, 1.0 / 15.0);
  const auto cam = make_world_track(1, 30.0, 1.0, sim::ActorType::kVehicle, 2);
  const auto lid = make_lidar_track(1, 30.0, 0.0);
  const auto out = fusion.fuse({cam}, {lid});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].lidar_corroborated);
  // Vehicle: 85% lidar weight -> y = 0.15 * 1.0
  EXPECT_NEAR(out[0].rel_position.y, 0.15, 1e-9);
}

TEST(Fusion, CameraOnlyFarPublishesAfterShortAge) {
  Fusion fusion(FusionConfig{}, LidarConfig{}, 1.0 / 15.0);
  // Pedestrian at 60 m: beyond LiDAR pedestrian coverage -> age 4 suffices.
  const auto young =
      make_world_track(1, 60.0, 0.0, sim::ActorType::kPedestrian, 3);
  EXPECT_TRUE(fusion.fuse({young}, {}).empty());
  const auto old =
      make_world_track(1, 60.0, 0.0, sim::ActorType::kPedestrian, 4);
  EXPECT_EQ(fusion.fuse({old}, {}).size(), 1u);
}

TEST(Fusion, CameraOnlyInCoverageNeedsLongerAge) {
  Fusion fusion(FusionConfig{}, LidarConfig{}, 1.0 / 15.0);
  // Vehicle at 30 m with NO lidar track: sensor disagreement.
  const auto t10 = make_world_track(1, 30.0, 0.0, sim::ActorType::kVehicle, 10);
  EXPECT_TRUE(fusion.fuse({t10}, {}).empty());
  const auto t12 = make_world_track(1, 30.0, 0.0, sim::ActorType::kVehicle, 12);
  const auto out = fusion.fuse({t12}, {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].lidar_expected);
  EXPECT_FALSE(out[0].lidar_corroborated);
}

TEST(Fusion, LidarOnlyNeverPublished) {
  Fusion fusion(FusionConfig{}, LidarConfig{}, 1.0 / 15.0);
  EXPECT_TRUE(fusion.fuse({}, {make_lidar_track(1, 20.0, 0.0)}).empty());
}

TEST(Fusion, LateralHijackBreaksPairing) {
  Fusion fusion(FusionConfig{}, LidarConfig{}, 1.0 / 15.0);
  const auto lid = make_lidar_track(1, 30.0, 0.0);
  // Camera track laterally displaced beyond the 2.0 m lateral gate.
  const auto cam =
      make_world_track(1, 30.0, 2.5, sim::ActorType::kVehicle, 20);
  const auto out = fusion.fuse({cam}, {lid});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].lidar_corroborated);
  EXPECT_NEAR(out[0].rel_position.y, 2.5, 1e-9);  // camera-only position
}

TEST(Fusion, CoastsThenDropsVanishedObject) {
  FusionConfig cfg;
  cfg.coast_frames = 2;
  Fusion fusion(cfg, LidarConfig{}, 1.0 / 15.0);
  // 100 m: beyond LiDAR coverage, so camera-only age 4 publishes.
  const auto cam =
      make_world_track(1, 100.0, 0.0, sim::ActorType::kVehicle, 10);
  EXPECT_EQ(fusion.fuse({cam}, {}).size(), 1u);
  auto coast1 = fusion.fuse({}, {});
  ASSERT_EQ(coast1.size(), 1u);
  EXPECT_TRUE(coast1[0].coasting);
  EXPECT_EQ(fusion.fuse({}, {}).size(), 1u);
  EXPECT_TRUE(fusion.fuse({}, {}).empty());
}

// --------------------------------------------------------------- pipeline

TEST(PerceptionSystem, EndToEndTracksGroundTruth) {
  CameraModel cam;
  PerceptionSystem sys(cam, 1.0 / 15.0, 0.1);
  DetectorModel det(cam, DetectorNoiseModel::paper_defaults(), stats::Rng(9));
  LidarModel lidar(LidarConfig{}, stats::Rng(10));

  const auto obj = make_object(35.0, 0.0, sim::ActorType::kVehicle);
  PerceptionOutput out;
  for (int f = 0; f < 45; ++f) {
    if (f % 2 == 0) sys.ingest_lidar(lidar.scan({obj}));
    out = sys.step(det.detect({obj}, f / 15.0));
  }
  ASSERT_FALSE(out.world.empty());
  EXPECT_NEAR(out.world[0].rel_position.x, 35.0, 2.0);
  EXPECT_NEAR(out.world[0].rel_position.y, 0.0, 0.8);
  EXPECT_TRUE(out.world[0].lidar_corroborated);
}


// --------------------------------- scratch-based hot-path refactor pins

TEST(Hungarian, ScratchOverloadMatchesDefault) {
  stats::Rng rng(55);
  AssignmentScratch scratch;
  for (int round = 0; round < 20; ++round) {
    const std::size_t rows = 1 + static_cast<std::size_t>(round % 5);
    const std::size_t cols = 1 + static_cast<std::size_t>((round * 3) % 6);
    math::Matrix cost(rows, cols);
    for (double& v : cost.data()) v = rng.uniform(0.0, 1.0);
    const AssignmentResult a = solve_assignment(cost);
    const AssignmentResult b = solve_assignment(cost, scratch);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  }
}

TEST(MotTracker, UpdateIntoMatchesUpdate) {
  MotTracker a(1.0 / 15.0);
  MotTracker b(1.0 / 15.0);
  stats::Rng rng(66);
  std::vector<TrackView> buf;
  for (int frame_i = 0; frame_i < 40; ++frame_i) {
    CameraFrame frame;
    frame.time = frame_i / 15.0;
    for (int j = 0; j < 3; ++j) {
      Detection d;
      d.bbox = {120.0 + 140.0 * j + rng.normal(0.0, 1.5),
                300.0 + rng.normal(0.0, 1.0), 50.0, 50.0};
      frame.detections.push_back(d);
    }
    const auto via_update = a.update(frame);
    b.update_into(frame, buf);
    ASSERT_EQ(via_update.size(), buf.size());
    for (std::size_t t = 0; t < buf.size(); ++t) {
      EXPECT_EQ(via_update[t].track_id, buf[t].track_id);
      EXPECT_EQ(via_update[t].bbox.cx, buf[t].bbox.cx);
      EXPECT_EQ(via_update[t].bbox.cy, buf[t].bbox.cy);
      EXPECT_EQ(via_update[t].hits, buf[t].hits);
      EXPECT_EQ(via_update[t].matched_this_frame, buf[t].matched_this_frame);
    }
  }
}

// Golden pin computed on the pre-kernel-refactor implementation (chained
// allocating Matrix operators): a 200-step noisy BboxTrack walk, folding
// the post-step state estimate and the Mahalanobis gate value. The
// scratch-based Kalman step must reproduce it bit for bit.
//
// Re-pinned for the PR 8 counter-based noise migration (Rng::normal is now
// one engine word through the inverse CDF): the trace's noise draws moved,
// the KF algebra did not — before the migration window closed, this walk
// hashed to 0x9d97ae90dde06aacULL under the (now removed) legacy
// std::normal_distribution path, which also proved the PR 8
// fixed-dimension matrix kernels are bit-identical to the generic paths.
TEST(KalmanFilter, GoldenTrackTraceIsBitIdenticalToPreRefactor) {
  Detection d;
  d.bbox = {100.0, 100.0, 40.0, 40.0};
  BboxTrack track(1, d, 1.0 / 15.0,
                  DetectorNoiseModel::paper_defaults().vehicle);
  stats::Rng rng(77);
  std::uint64_t h = stats::kFnv1aOffset;
  for (int i = 0; i < 200; ++i) {
    track.predict();
    d.bbox.cx += rng.normal(0.4, 1.2);
    d.bbox.cy += rng.normal(-0.1, 0.8);
    d.bbox.w += rng.normal(0.0, 0.5);
    d.bbox.h += rng.normal(0.0, 0.5);
    if (i % 7 != 3) track.update(d);
    const auto b = track.bbox();
    for (const double v :
         {b.cx, b.cy, b.w, b.h, track.vu(), track.vv()}) {
      h = stats::fnv1a_double(h, v);
    }
    h = stats::fnv1a_double(h, track.mahalanobis2(d.bbox));
  }
  EXPECT_EQ(h, 0x52ffad82edfddd8aULL);
}

}  // namespace
}  // namespace rt::perception
