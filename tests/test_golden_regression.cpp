// Golden-value regression tests. These pin paper-facing semantics so that
// refactors (parallel scheduler, RNG changes, perception tweaks) cannot
// silently shift Table I / Table II behaviour. If a change breaks one of
// these on purpose, re-measure and update the pinned values in the same PR,
// and say so in CHANGES.md.

#include <gtest/gtest.h>

#include <vector>

#include "core/scenario_matcher.hpp"
#include "experiments/campaign.hpp"
#include "experiments/sh_training.hpp"
#include "experiments/thread_pool.hpp"
#include "sim/road.hpp"

namespace rt {
namespace {

using core::AttackVector;
using core::LateralTrajectory;
using core::ScenarioMatcher;

perception::WorldTrack target_at(double x, double y, double vy) {
  perception::WorldTrack t;
  t.track_id = 1;
  t.cls = sim::ActorType::kVehicle;
  t.rel_position = {x, y};
  t.rel_velocity = {0.0, vy};
  t.hits = 10;
  return t;
}

// ------------------------------------------------ Table I (pinned cells)

struct TableICell {
  const char* name;
  double y;   // lateral offset (ego-lane half width is 1.85)
  double vy;  // lateral velocity (Keep threshold is 0.25)
  std::vector<AttackVector> expected;
};

TEST(GoldenTableI, AdmissibleVectorsPerCell) {
  // One canonical target per cell of Table I, at mid attack range.
  const std::vector<TableICell> cells{
      // In EV lane, holding position -> Move_Out / Disappear.
      {"in-lane keep", 0.0, 0.0, {AttackVector::kMoveOut,
                                  AttackVector::kDisappear}},
      // In EV lane, moving toward a boundary -> Move_In (row 3, col 1).
      {"in-lane moving-out", 1.0, 1.0, {AttackVector::kMoveIn}},
      // Outside the lane, approaching -> Move_Out / Disappear (row 1).
      {"out-lane moving-in", 3.7, -1.0, {AttackVector::kMoveOut,
                                         AttackVector::kDisappear}},
      // Outside the lane, holding -> Move_In (row 2, col 2).
      {"out-lane keep", -3.0, 0.0, {AttackVector::kMoveIn}},
      // Outside the lane, receding -> no admissible vector (row 3, col 2).
      {"out-lane moving-out", 3.7, 1.0, {}},
  };
  ScenarioMatcher sm;
  for (const auto& cell : cells) {
    EXPECT_EQ(sm.admissible(target_at(30.0, cell.y, cell.vy)), cell.expected)
        << cell.name;
  }
}

TEST(GoldenTableI, RangeGateUnchanged) {
  ScenarioMatcher sm;
  EXPECT_TRUE(sm.admissible(target_at(2.9, 0.0, 0.0)).empty());   // too close
  EXPECT_FALSE(sm.admissible(target_at(3.1, 0.0, 0.0)).empty());
  EXPECT_FALSE(sm.admissible(target_at(99.0, 0.0, 0.0)).empty());
  EXPECT_TRUE(sm.admissible(target_at(101.0, 0.0, 0.0)).empty());  // too far
}

TEST(GoldenTableI, ClassifyBoundaries) {
  ScenarioMatcher sm;
  EXPECT_EQ(sm.classify(target_at(30.0, 0.0, 0.2)), LateralTrajectory::kKeep);
  EXPECT_EQ(sm.classify(target_at(30.0, 1.0, 0.3)),
            LateralTrajectory::kMovingOut);
  EXPECT_EQ(sm.classify(target_at(30.0, 3.7, -0.3)),
            LateralTrajectory::kMovingIn);
  EXPECT_EQ(sm.classify(target_at(30.0, -3.0, -0.3)),
            LateralTrajectory::kMovingOut);
}

// --------------------------------- Table II mini-campaign (pinned values)

// <DS-1, Disappear, R> with 8 runs and seed 20200613, driven by a small
// deterministically-trained Disappear oracle (reduced sweep + few epochs —
// launch quality doesn't matter here, only that the full R pipeline runs).
// The pinned aggregates were measured at commit time with the counter-based
// Rng::from_stream derivation; they are exact, not statistical — any drift
// means run semantics changed.
TEST(GoldenTableII, Ds1DisappearMiniCampaign) {
  experiments::LoopConfig loop;

  experiments::ShTrainingConfig sh;
  sh.delta_triggers = {12.0, 20.0};
  sh.ks = {10, 30};
  sh.repeats = 1;
  sh.seed = 99;
  sh.train.epochs = 10;
  sh.train.patience = 0;
  experiments::OracleSet oracles;
  oracles[AttackVector::kDisappear] = experiments::train_oracle(
      AttackVector::kDisappear, loop, sh);

  experiments::CampaignRunner runner(loop, oracles);
  experiments::CampaignSpec spec{"DS-1-Disappear-R",
                                 "DS-1",
                                 AttackVector::kDisappear,
                                 experiments::AttackMode::kRobotack,
                                 8,
                                 20200613};
  const auto result =
      experiments::CampaignScheduler(runner, 0).run(spec);

  // Row shape (Table II columns: ID, K, #runs, EB, crash).
  ASSERT_EQ(result.n(), 8);
  EXPECT_EQ(result.spec.name, "DS-1-Disappear-R");

  // Pinned aggregates (see header comment before updating). Every run
  // triggers but none reaches emergency braking — the full-scale rates
  // live in bench/table2_attack_summary, not here.
  //
  // median_k re-pinned for the PR 8 counter-based noise migration: the
  // mini oracle trains on different noise draws and now launches at
  // mid-range k instead of the minimal k. Old pin (std::normal_distribution
  // noise; that path and RT_LEGACY_NOISE are now removed): median_k == 3.0.
  EXPECT_EQ(result.triggered_count(), 8);
  EXPECT_EQ(result.eb_count(), 0);
  EXPECT_EQ(result.crash_count(), 0);
  EXPECT_EQ(result.ids_flagged_count(), 0);
  EXPECT_NEAR(result.median_k(), 15.5, 1e-9);

  // Every triggered run reports a usable min-delta sample (Fig. 6 input).
  EXPECT_EQ(result.min_deltas().size(), 8u);
  // Disappear runs are excluded from K' (Fig. 7) by construction.
  EXPECT_TRUE(result.k_primes().empty());
}

}  // namespace
}  // namespace rt
