#!/usr/bin/env sh
# CI entry point: the tier-1 verify in Release, then a Debug build with
# ASan+UBSan. Both jobs run the full ctest suite.
set -eu

jobs="$(nproc 2>/dev/null || echo 2)"

echo "==> Release"
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "$jobs"
ctest --test-dir build-release --output-on-failure -j "$jobs"

# The golden-regression binaries are the contract that perf refactors never
# change results; a build misconfiguration that silently drops them from the
# suite must fail CI, not pass vacuously.
for required in test_golden_regression test_sh_training test_transfer_matrix \
                test_defense test_scenario_fuzz test_campaign_serde \
                test_service test_service_faults; do
  count="$(ctest --test-dir build-release -N -R "$required" | grep -c "Test *#" || true)"
  if [ "$count" -lt 1 ]; then
    echo "ERROR: required golden test binary '$required' missing from the suite" >&2
    exit 1
  fi
done

# Smoke-run the guided examples so they cannot silently rot: quickstart
# (trains or loads the cached oracles) and the scenario-registry showcase
# (registers a custom family + grid campaign; hermetic, few runs).
echo "==> example smoke runs"
./build-release/examples/quickstart
./build-release/examples/scenario_showcase 3
./build-release/examples/defense_demo 4

# Smoke-run the transfer-matrix driver so the curriculum-training +
# transfer path is exercised on every build (2 campaign runs per cell
# keeps the full 8x8 matrix to a few seconds).
echo "==> fig_transfer smoke run"
./build-release/bench/fig_transfer --runs 2 \
  --csv build-release/fig_transfer_smoke.csv \
  --json build-release/fig_transfer_smoke.json

# Release bench smoke with machine-readable records: BENCH_campaign.json is
# the repository's perf trajectory — campaign-grid throughput from the
# table2 driver, plus the scheduler/NN microbenchmarks when google-benchmark
# is available. Single-threaded so runs/sec is comparable across PRs on the
# 1-core CI container.
#
# The driver runs twice, untraced and traced (--trace): the CSVs must be
# byte-identical (tracing is passive or it is broken), the trace must parse
# under the strict linter and contain the campaign spans, and both perf
# records land in BENCH_campaign.json so the traced-vs-untraced overhead is
# tracked across PRs.
echo "==> bench smoke (BENCH_campaign.json, traced + untraced)"
./build-release/bench/table2_attack_summary --runs 8 --threads 1 \
  --json BENCH_campaign_untraced.json --csv build-release/table2_untraced.csv
./build-release/bench/table2_attack_summary --runs 8 --threads 1 \
  --json BENCH_campaign_traced.json --csv build-release/table2_traced.csv \
  --trace build-release/table2_trace.json
cmp build-release/table2_untraced.csv build-release/table2_traced.csv || {
  echo "ERROR: arming the tracer changed the table2 result bytes" >&2
  exit 1
}
# Strict parse + required spans. The table2 path runs the campaign grid
# (grid_request, campaign_cell); oracle_batch_flush belongs to the
# transfer-matrix driver and must NOT be demanded here.
./build-release/examples/trace_lint build-release/table2_trace.json \
  grid_request campaign_cell
# Merge both records into the canonical BENCH_campaign.json and check the
# overhead: warn past the 3% budget, fail only at a loose 25% bound (the
# 1-core CI container is noisy at --runs 8).
grep -h '"bench"' BENCH_campaign_untraced.json BENCH_campaign_traced.json \
  | sed 's/,$//' \
  | awk 'BEGIN{print "["} {l[NR]=$0} END{for(i=1;i<=NR;i++) print l[i] (i<NR?",":""); print "]"}' \
  >BENCH_campaign.json
rm -f BENCH_campaign_untraced.json BENCH_campaign_traced.json
cat BENCH_campaign.json
untraced_rps="$(sed -n 's/.*table2_campaign_grid".*"runs_per_sec": \([0-9.]*\).*/\1/p' BENCH_campaign.json)"
traced_rps="$(sed -n 's/.*table2_campaign_grid_traced".*"runs_per_sec": \([0-9.]*\).*/\1/p' BENCH_campaign.json)"
awk -v u="$untraced_rps" -v t="$traced_rps" 'BEGIN{
  if (u <= 0 || t <= 0) { print "ERROR: missing table2 perf records" > "/dev/stderr"; exit 1 }
  overhead = (u - t) / u * 100.0
  printf "table2 traced overhead: %.1f%% (untraced %.1f r/s, traced %.1f r/s)\n", overhead, u, t
  if (overhead > 25) { print "ERROR: tracing overhead exceeds the 25% hard bound" > "/dev/stderr"; exit 1 }
  if (overhead > 3) printf "WARNING: tracing overhead %.1f%% exceeds the 3%% budget\n", overhead
}'

# The attack-vs-defense matrix: smoke the full scenario x mode x monitor
# grid (2 runs per cell keeps all 8 families to a few seconds) and track
# its throughput next to the campaign numbers.
echo "==> table_defense smoke (BENCH_defense.json)"
./build-release/bench/table_defense --runs 2 --threads 1 \
  --json BENCH_defense.json >/dev/null
cat BENCH_defense.json

# Bounded fuzz smoke: the coverage-guided scenario search plus the clean-run
# invariant sweep over its frontier. The driver exits nonzero if any frontier
# sample violates an invariant, so CI catches generator regressions that the
# pinned corpus alone would miss.
echo "==> table_fuzz smoke (BENCH_fuzz.json)"
./build-release/bench/table_fuzz --runs 2 --threads 1 \
  --json BENCH_fuzz.json >/dev/null
cat BENCH_fuzz.json
# Campaign service: the cold/warm cache driver is its own gate (it exits
# nonzero unless the warm pass is 100% hits, bit-identical, and >=10x
# faster), and its records are the service-layer perf trajectory.
echo "==> table_service smoke (BENCH_service.json)"
./build-release/bench/table_service --runs 4 --threads 1 \
  --json BENCH_service.json
cat BENCH_service.json

# Batch server determinism gate: run the same grid request twice against one
# cache directory. The second pass must report 100% cache hits and produce a
# byte-identical CSV, or the content-hash cache has broken bit-determinism.
echo "==> campaign_server cache determinism"
server_req='run scenarios=DS-1,DS-2 vectors=Disappear modes=RwoSH,Golden runs=3 seed=11'
server_cache="build-release/server_cache_smoke"
rm -rf "$server_cache"
printf '%s\nquit\n' "$server_req" | ./build-release/examples/campaign_server \
  --no-oracles --cache-dir "$server_cache" \
  >build-release/server_pass1.csv 2>build-release/server_pass1.log
printf '%s\nquit\n' "$server_req" | ./build-release/examples/campaign_server \
  --no-oracles --cache-dir "$server_cache" \
  >build-release/server_pass2.csv 2>build-release/server_pass2.log
cmp build-release/server_pass1.csv build-release/server_pass2.csv || {
  echo "ERROR: campaign_server CSV not byte-identical across cache passes" >&2
  exit 1
}
grep -q '"event":"cache_summary","hits":4,"misses":0' \
  build-release/server_pass2.log || {
  echo "ERROR: campaign_server warm pass was not 100% cache hits" >&2
  cat build-release/server_pass2.log >&2
  exit 1
}

# Third warm pass with the `stats` verb: the metrics registry must agree
# with the JSONL cache summary — 4 cache hits, 0 misses, visible through
# the exporter and not just the log line.
printf '%s\nstats\nquit\n' "$server_req" | ./build-release/examples/campaign_server \
  --no-oracles --cache-dir "$server_cache" \
  >build-release/server_pass3.out 2>build-release/server_pass3.log
grep -q '"rt_campaign_cache_hits_total": 4' build-release/server_pass3.out || {
  echo "ERROR: stats verb did not report 4 cache hits" >&2
  grep -v '^spec,' build-release/server_pass3.out >&2 || true
  exit 1
}
grep -q '"rt_campaign_cache_misses_total": 0' build-release/server_pass3.out || {
  echo "ERROR: stats verb reported cache misses on a warm cache" >&2
  exit 1
}
grep -q '"rt_service_requests_total": 1' build-release/server_pass3.out || {
  echo "ERROR: stats verb did not count the request" >&2
  exit 1
}

# Concurrent-server determinism gate: one long-lived server on a Unix
# socket, two requests run serially and then from two simultaneous clients.
# Concurrent responses must be byte-identical to the serial ones (the
# single-executor barrier is what makes the service deterministic under
# concurrency), and the SIGTERM drain must exit 0 and unlink the socket.
echo "==> campaign_server concurrent determinism"
server_sock="/tmp/rt_ci_server_$$.sock"
req_a='run scenarios=DS-1 modes=RwoSH runs=3 seed=11'
req_b='run scenarios=DS-1 modes=Golden runs=3 seed=22'
rm -f "$server_sock"
./build-release/examples/campaign_server --no-oracles \
  --socket "$server_sock" 2>build-release/server_socket.log &
server_pid=$!
for _ in $(seq 1 200); do
  [ -S "$server_sock" ] && break
  sleep 0.05
done
[ -S "$server_sock" ] || { echo "ERROR: server socket never appeared" >&2; exit 1; }
./build-release/examples/campaign_client --socket "$server_sock" \
  "$req_a" >build-release/serial_a.csv
./build-release/examples/campaign_client --socket "$server_sock" \
  "$req_b" >build-release/serial_b.csv
./build-release/examples/campaign_client --socket "$server_sock" \
  "$req_a" >build-release/conc_a.csv &
client_a=$!
./build-release/examples/campaign_client --socket "$server_sock" \
  "$req_b" >build-release/conc_b.csv &
client_b=$!
wait "$client_a" && wait "$client_b" || {
  echo "ERROR: concurrent campaign_client failed" >&2
  exit 1
}
cmp build-release/serial_a.csv build-release/conc_a.csv || {
  echo "ERROR: concurrent response A differs from serial" >&2
  exit 1
}
cmp build-release/serial_b.csv build-release/conc_b.csv || {
  echo "ERROR: concurrent response B differs from serial" >&2
  exit 1
}
kill -TERM "$server_pid"
wait "$server_pid" || {
  echo "ERROR: campaign_server did not exit 0 on SIGTERM" >&2
  exit 1
}
[ ! -e "$server_sock" ] || {
  echo "ERROR: campaign_server left its socket behind" >&2
  exit 1
}

if [ -x build-release/bench/bench_perception ]; then
  ./build-release/bench/bench_perception \
    --benchmark_filter='BM_CampaignSchedulerThroughput/1|BM_KalmanPredictUpdate' \
    --json BENCH_perception.json >/dev/null
  cat BENCH_perception.json
fi
if [ -x build-release/bench/bench_nn ]; then
  ./build-release/bench/bench_nn \
    --benchmark_filter='BM_OracleInference|BM_OracleBatchInference|BM_SafetyHijackerDecision' \
    --json BENCH_nn.json >/dev/null
  cat BENCH_nn.json
fi

echo "==> Debug + ASan/UBSan"
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DROBOTACK_SANITIZE=ON
cmake --build build-asan -j "$jobs"
# The fuzz sweep's closed-loop sample counts are sized for Release; under
# the sanitizers run it separately with a reduced RT_FUZZ_SAMPLES (the test
# floors the per-template count at 2, so every family is still exercised).
# Same deal for the chaos suite: RT_FAULT_SEEDS=1 keeps the fault-matrix
# seed set to one per (site, type) pair under ASan.
ctest --test-dir build-asan --output-on-failure -j "$jobs" -LE 'fuzz|chaos'
RT_FUZZ_SAMPLES=4 ctest --test-dir build-asan --output-on-failure -L fuzz
RT_FAULT_SEEDS=1 ctest --test-dir build-asan --output-on-failure -L chaos

echo "==> OK"
