#!/usr/bin/env sh
# CI entry point: the tier-1 verify in Release, then a Debug build with
# ASan+UBSan. Both jobs run the full ctest suite.
set -eu

jobs="$(nproc 2>/dev/null || echo 2)"

echo "==> Release"
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "$jobs"
ctest --test-dir build-release --output-on-failure -j "$jobs"

# Smoke-run the guided examples so they cannot silently rot: quickstart
# (trains or loads the cached oracles) and the scenario-registry showcase
# (registers a custom family + grid campaign; hermetic, few runs).
echo "==> example smoke runs"
./build-release/examples/quickstart
./build-release/examples/scenario_showcase 3

# Smoke-run the transfer-matrix driver so the curriculum-training +
# transfer path is exercised on every build (2 campaign runs per cell
# keeps the full 8x8 matrix to a few seconds).
echo "==> fig_transfer smoke run"
./build-release/bench/fig_transfer --runs 2 \
  --csv build-release/fig_transfer_smoke.csv

echo "==> Debug + ASan/UBSan"
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DROBOTACK_SANITIZE=ON
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "==> OK"
